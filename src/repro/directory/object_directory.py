"""Locality-aware object location — the paper's motivating application.

The introduction motivates name-independent routing with "network
operations such as locating nearby copies of replicated objects and
tracking of mobile objects" (Awerbuch–Peleg [8]; LAND [7]).  This module
builds that directory service on the Theorem 1.4 machinery:

* **publish(object, holder)** registers ``(object -> l(holder))`` in the
  ball directory ``T(x, 2^i/ε)`` of *every* net point ``x ∈ Y_i`` whose
  ball contains the holder — exactly how the name-independent scheme
  indexes node names, with object ids as the keys.  When several copies
  fall in the same ball, the one nearest the ball center is kept.
* **lookup(origin, object)** runs Algorithm 3 with the object id as the
  key: climb the origin's zooming sequence, search each level's ball
  directory, and travel to the first copy found with the underlying
  labeled scheme.

Locality guarantee (the Lemma 3.4 argument, adapted): a miss at level
``i-1`` certifies that *no* copy lies within ``2^{i-1}/ε`` of
``u(i-1)``, so the distance to the nearest copy is at least
``2^{i-1}(1/ε - 2)``; the total climb + search + fetch cost is
``O(2^j/ε)``, giving a constant ``locality_ratio`` independent of the
number or placement of copies (``≈ 11 + O(ε)``; for a single copy the
found holder is the target itself and the paper's ``9 + O(ε)`` bound
applies verbatim).  Unpublish + republish supports mobile objects.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError, RouteFailure
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
from repro.searchtree.tree import SearchTree


@dataclasses.dataclass
class LookupResult:
    """Outcome of one object lookup."""

    object_id: Hashable
    origin: NodeId
    holder: NodeId
    cost: float
    nearest_copy_distance: float
    path: List[NodeId]

    @property
    def locality_ratio(self) -> float:
        """Lookup cost over the distance to the nearest copy."""
        if self.nearest_copy_distance <= 0:
            return 1.0
        return self.cost / self.nearest_copy_distance


class ObjectDirectory:
    """Publish/lookup directory with a constant locality guarantee."""

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        labeled: Optional[NonScaleFreeLabeledScheme] = None,
    ) -> None:
        if params is None:
            params = SchemeParameters()
        self._metric = metric
        self._params = params
        if labeled is None:
            labeled = NonScaleFreeLabeledScheme(metric, params)
        self._labeled = labeled
        self._hierarchy: NetHierarchy = labeled.hierarchy
        # One ball directory per (level, net point); the registration
        # maps keep (label, holder) while the trees store labels only.
        self._trees: List[Dict[NodeId, SearchTree]] = []
        self._registrations: List[
            Dict[NodeId, Dict[Hashable, Tuple[int, NodeId]]]
        ] = []
        self._holders: Dict[Hashable, Set[NodeId]] = {}
        for i in self._hierarchy.levels:
            radius = (2.0**i) / params.epsilon
            level_trees = {}
            level_regs = {}
            for x in self._hierarchy.net(i):
                tree = SearchTree(metric, x, radius, params.epsilon)
                tree.store({})
                level_trees[x] = tree
                level_regs[x] = {}
            self._trees.append(level_trees)
            self._registrations.append(level_regs)

    # ------------------------------------------------------------------
    # Publish / unpublish
    # ------------------------------------------------------------------

    def _directories_covering(self, holder: NodeId):
        """Yield every (level, net point) whose ball holds ``holder``."""
        eps = self._params.epsilon
        for i in self._hierarchy.levels:
            radius = (2.0**i) / eps
            # The bounded ball over-approximates (its slack is 1e-9);
            # re-filter at this directory's tighter 1e-12 tolerance.
            ids, d = self._metric.ball_with_distances(holder, radius)
            covering = {
                int(x) for x, dx in zip(ids, d) if dx <= radius + 1e-12
            }
            for x in self._hierarchy.net(i):
                if x in covering:
                    yield i, x

    def publish(self, object_id: Hashable, holder: NodeId) -> None:
        """Register a copy of ``object_id`` held at ``holder``.

        Registers in every ball directory containing the holder —
        ``(1/ε)^{O(α)}`` per level — keeping, per directory, the copy
        nearest its center (least id on ties).
        """
        if not 0 <= holder < self._metric.n:
            raise PreprocessingError(f"holder {holder} out of range")
        label = self._labeled.routing_label(holder)
        for i, x in self._directories_covering(holder):
            held = self._registrations[i][x]
            incumbent = held.get(object_id)
            if incumbent is None or self._center_prefers(
                x, holder, incumbent[1]
            ):
                held[object_id] = (label, holder)
                self._trees[i][x].store(
                    {key: value[0] for key, value in held.items()}
                )
        self._holders.setdefault(object_id, set()).add(holder)

    def _center_prefers(
        self, center: NodeId, candidate: NodeId, incumbent: NodeId
    ) -> bool:
        metric = self._metric
        return (metric.distance(center, candidate), candidate) < (
            metric.distance(center, incumbent),
            incumbent,
        )

    def unpublish(self, object_id: Hashable, holder: NodeId) -> None:
        """Remove ``holder``'s copy (mobile objects: move = un+republish)."""
        holders = self._holders.get(object_id, set())
        holders.discard(holder)
        if not holders:
            self._holders.pop(object_id, None)
        for i in self._hierarchy.levels:
            for x, held in self._registrations[i].items():
                entry = held.get(object_id)
                if entry is not None:
                    del held[object_id]
                    self._trees[i][x].store(
                        {key: value[0] for key, value in held.items()}
                    )
        for remaining in sorted(holders):
            self.publish(object_id, remaining)

    def holders(self, object_id: Hashable) -> Set[NodeId]:
        return set(self._holders.get(object_id, set()))

    def registration_count(self, object_id: Hashable) -> int:
        """Total directory entries held for ``object_id`` (space audit)."""
        return sum(
            1
            for level in self._registrations
            for held in level.values()
            if object_id in held
        )

    # ------------------------------------------------------------------
    # Lookup (Algorithm 3 with the object id as the key)
    # ------------------------------------------------------------------

    def lookup(self, origin: NodeId, object_id: Hashable) -> LookupResult:
        """Find and travel to a copy of ``object_id`` from ``origin``."""
        holders = self._holders.get(object_id)
        if not holders:
            raise RouteFailure(f"object {object_id!r} is not published")
        path = [origin]
        cost = 0.0
        current = origin
        found_label: Optional[int] = None
        for i in self._hierarchy.levels:
            outcome = self._trees[i][current].search(object_id)
            cost += outcome.cost
            path.extend(outcome.trail[1:])
            if outcome.found:
                found_label = int(outcome.data)
                break
            if i == self._hierarchy.top_level:
                break
            parent = self._hierarchy.parent(current, i + 1)
            if parent != current:
                leg = self._labeled.route_to_label(
                    current, self._labeled.routing_label(parent)
                )
                cost += leg.cost
                path.extend(leg.path[1:])
                current = parent
        if found_label is None:  # pragma: no cover - root ball covers V
            raise RouteFailure(
                f"published object {object_id!r} not found at the root"
            )
        final = self._labeled.route_to_label(current, found_label)
        cost += final.cost
        path.extend(final.path[1:])
        holder = final.target
        if holder not in holders:  # pragma: no cover - defensive
            raise RouteFailure(
                f"directory delivered to non-holder {holder}"
            )
        nearest = min(
            self._metric.distance(origin, h) for h in holders
        )
        return LookupResult(
            object_id=object_id,
            origin=origin,
            holder=holder,
            cost=cost,
            nearest_copy_distance=nearest,
            path=path,
        )

    def locality_guarantee(self) -> float:
        """Cost/nearest-copy envelope ``(8(1/ε+1) + 2/ε)/(1/ε−2) + 1``.

        Requires ``ε < 1/2``; with a single published copy the tighter
        Lemma 3.4 bound ``1 + 8(1/ε+1)/(1/ε−2)`` applies.
        """
        inv = 1.0 / self._params.epsilon
        if inv <= 2.0:
            return float("inf")
        return (8.0 * (inv + 1.0) + 2.0 * inv) / (inv - 2.0) + 1.0
