"""Ball packings — the Packing Lemma (paper Lemma 2.3).

For each ``j ∈ [log n]`` the packing ``ℬ_j`` is a maximal set of pairwise
disjoint balls of *size* exactly ``2^j`` (each ball is the ``2^j`` nearest
nodes of its center, ties broken by node id; its radius is the paper's
``r_c(j)``).  Following the lemma's proof, balls are selected greedily in
order of increasing radius (ties by center id), giving both properties:

1. every ball in ``ℬ_j`` has exactly ``2^j`` members, and
2. for any node ``u`` there is a ball ``B ∈ ℬ_j`` with center ``c`` such
   that ``r_c(j) <= r_u(j)`` and ``d(u, c) <= 2 r_u(j)``.

The packings are the ingredient that makes the Theorem 1.1/1.2 schemes
scale-free: there are only ``log n + 1`` of them, independent of ``Δ``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.types import NodeId
from repro.metric.graph_metric import GraphMetric

#: Stats key folded into BuildStats: one partition per packing level.
_REPORT_KIND = "packing_level"


@dataclasses.dataclass(frozen=True)
class PackedBall:
    """One ball of a packing ``ℬ_j``.

    Attributes:
        center: The node ``c`` the ball is grown around.
        level: The packing index ``j`` (ball size is ``2^level``).
        radius: ``r_c(j)``, distance from ``c`` to its ``2^j``-th nearest
            node.
        members: The ``2^j`` nearest nodes of ``c`` (ties by id).
    """

    center: NodeId
    level: int
    radius: float
    members: FrozenSet[NodeId]

    @property
    def size(self) -> int:
        return len(self.members)


class BallPacking:
    """The family ``{ℬ_j : j ∈ [log n]}`` of greedy ball packings.

    Args:
        metric: The network metric.

    The packing for level ``j = log n`` always consists of the single ball
    of all ``n`` nodes centered at the node with the smallest eccentricity
    (ties by id) — sizes ``2^j`` are clamped to ``n`` at the top so the
    hierarchy is well defined when ``n`` is not a power of two.
    """

    def __init__(self, metric: GraphMetric) -> None:
        self._metric = metric
        self._levels = metric.log_n
        self._packings: List[List[PackedBall]] = [
            self._build_level(j) for j in range(self._levels + 1)
        ]
        # node -> ball-of-this-level containing it (balls are disjoint).
        self._containing: List[Dict[NodeId, PackedBall]] = []
        for packing in self._packings:
            index: Dict[NodeId, PackedBall] = {}
            for ball in packing:
                for v in ball.members:
                    index[v] = ball
            self._containing.append(index)
        #: Partition accounting for BuildStats.fold (see BuildContext).
        self.build_report: Dict[str, Tuple[int, int]] = {
            _REPORT_KIND: (0, self._levels + 1)
        }

    @classmethod
    def rebuilt(
        cls, metric: GraphMetric, previous: "BallPacking"
    ) -> "BallPacking":
        """Rebuild against an edited metric, promoting if unchanged.

        Each packing level greedily scans *every* node's size-radius, so
        its dependency set is all of ``V`` and a dirtied packing cannot
        be patched — it is rebuilt in full.  But small edits usually
        leave the greedy selection identical, and detecting that (plain
        equality of the frozen ball records) lets the stashed object be
        promoted, which keeps downstream identity checks cheap.
        """
        fresh = cls(metric)
        if fresh._packings == previous._packings:
            previous._metric = metric
            # The levels *were* re-derived to prove equality; keep the
            # honest built count, promotion only preserves identity.
            previous.build_report = fresh.build_report
            return previous
        return fresh

    def _build_level(self, j: int) -> List[PackedBall]:
        metric = self._metric
        size = min(metric.n, 1 << j)
        candidates = sorted(
            metric.nodes, key=lambda u: (metric.size_radius(u, size), u)
        )
        taken: set = set()
        packing: List[PackedBall] = []
        for c in candidates:
            radius, members = metric.size_ball_with_radius(c, size)
            if any(v in taken for v in members):
                continue
            packing.append(
                PackedBall(
                    center=c,
                    level=j,
                    radius=radius,
                    members=frozenset(members),
                )
            )
            taken.update(members)
        return packing

    # ------------------------------------------------------------------

    @property
    def metric(self) -> GraphMetric:
        return self._metric

    @property
    def top_level(self) -> int:
        """``log n`` — the largest packing index."""
        return self._levels

    @property
    def levels(self) -> range:
        """All packing indices ``0 .. log n``."""
        return range(self._levels + 1)

    def packing(self, j: int) -> List[PackedBall]:
        """``ℬ_j``, in greedy selection order."""
        return self._packings[j]

    def ball_containing(self, u: NodeId, j: int) -> Optional[PackedBall]:
        """The (unique) ball of ``ℬ_j`` containing ``u``, if any.

        Packings are maximal but need not cover every node; Property 2
        guarantees only a *nearby* ball.
        """
        return self._containing[j].get(u)

    def nearby_ball(self, u: NodeId, j: int) -> PackedBall:
        """A ball witnessing Lemma 2.3 Property 2 for ``u``.

        Returns the packed ball whose member set intersects
        ``B_u(r_u(j))``, minimizing ``(radius, d(u, center), center id)``.
        The lemma guarantees ``radius <= r_u(j)`` and
        ``d(u, center) <= 2 r_u(j)`` for the returned ball.
        """
        metric = self._metric
        size = min(metric.n, 1 << j)
        own = frozenset(metric.size_ball(u, size))
        best: Optional[Tuple[float, float, int, PackedBall]] = None
        for ball in self._packings[j]:
            if ball.members.isdisjoint(own):
                continue
            key = (ball.radius, metric.distance(u, ball.center), ball.center)
            if best is None or key < best[:3]:
                best = (*key, ball)
        if best is None:  # pragma: no cover - maximality forbids this
            raise RuntimeError(f"packing level {j} is not maximal")
        return best[3]

    def voronoi_center(self, u: NodeId, j: int) -> NodeId:
        """Center ``c`` of ``ℬ_j`` whose Voronoi region contains ``u``.

        Voronoi regions (paper §4.1) partition ``V`` by nearest packing
        center, ties broken by least center id.
        """
        centers = [ball.center for ball in self._packings[j]]
        return self._metric.nearest_in(u, centers)

    def centers(self, j: int) -> List[NodeId]:
        """Centers of ``ℬ_j`` in greedy selection order."""
        return [ball.center for ball in self._packings[j]]

    def __repr__(self) -> str:
        sizes = [len(p) for p in self._packings]
        return f"BallPacking(levels={self._levels}, counts={sizes})"
