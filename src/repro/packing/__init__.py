"""Ball packings (paper Lemma 2.3)."""

from repro.packing.ballpacking import BallPacking, PackedBall

__all__ = ["BallPacking", "PackedBall"]
