"""The §5 lower bound: counterexample tree and counting arguments."""

from repro.lowerbound.counting import (
    LowerBoundParameters,
    averaging_bound,
    congruent_naming_log_count,
    lower_bound_parameters,
    table_size_threshold_bits,
    verify_claim_5_10_base,
    verify_claim_5_11,
)
from repro.lowerbound.tree import LowerBoundTree, lower_bound_tree

__all__ = [
    "LowerBoundParameters",
    "LowerBoundTree",
    "averaging_bound",
    "congruent_naming_log_count",
    "lower_bound_parameters",
    "lower_bound_tree",
    "table_size_threshold_bits",
    "verify_claim_5_10_base",
    "verify_claim_5_11",
]
