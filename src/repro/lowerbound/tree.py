"""The lower-bound counterexample tree of §5.2 (Figure 3).

Given ``ε ∈ (0, 8)`` the construction uses ``p = ⌈72/ε⌉ + 6`` and
``q = ⌈48/ε⌉ - 4``.  The graph is a tree: a root ``u`` plus ``p·q``
spoke-paths ``T_{i,j}``; an edge of weight ``w_{i,j} = 2^i (q + j)``
connects the root to the *middle* node of path ``T_{i,j}``, whose
internal edges all have weight ``1/n``.  Path ``T_{i,j}`` holds
``n^{(iq+j+1)/(pq)} - n^{(iq+j)/(pq)}`` nodes, so the whole tree has
exactly ``n`` nodes, normalized diameter ``Δ = O(2^{1/ε} n)``, and
doubling dimension at most ``6 - log ε`` (Lemma 5.8).

For finite ``n`` the fractional-power path sizes are rarely integers;
we round them with the largest-remainder method subject to a minimum of
one node per path, which preserves ``|V| = n`` exactly and keeps every
spoke present.  (The counting argument of §5.1 is carried out exactly,
on the ideal sizes, in :mod:`repro.lowerbound.counting`.)
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

import networkx as nx

from repro.core.types import PreprocessingError


@dataclasses.dataclass
class LowerBoundTree:
    """The constructed counterexample.

    Attributes:
        graph: The weighted tree (node 0 is the root ``u``).
        epsilon: The ``ε`` the construction was built for.
        p, q: Spoke grid dimensions.
        root: Root node id (always 0).
        path_nodes: ``(i, j) -> list`` of the node ids of ``T_{i,j}``
            in path order.
        path_middle: ``(i, j) -> `` the middle node (attached to root).
        spoke_weight: ``(i, j) -> w_{i,j}``.
        ideal_sizes: ``(i, j) ->`` the paper's fractional path size.
    """

    graph: nx.Graph
    epsilon: float
    p: int
    q: int
    root: int
    path_nodes: Dict[Tuple[int, int], List[int]]
    path_middle: Dict[Tuple[int, int], int]
    spoke_weight: Dict[Tuple[int, int], float]
    ideal_sizes: Dict[Tuple[int, int], float]

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    def doubling_dimension_bound(self) -> float:
        """Lemma 5.8: ``α <= 6 - log ε`` (via ``log2(q + 2)``)."""
        return math.log2(self.q + 2)

    def diameter_bound(self) -> float:
        """``Δ <= 2 w_{p-1,q-1} · n`` (min distance is 1/n)."""
        w_max = (2.0 ** (self.p - 1)) * (self.q + self.q - 1)
        return 2.0 * w_max * self.n

    def farthest_spoke_nodes(self) -> List[int]:
        """Nodes of the outermost path ``T_{p-1,q-1}`` (the targets the
        adversary hides the special name in)."""
        return list(self.path_nodes[(self.p - 1, self.q - 1)])


def _spoke_sizes(n: int, p: int, q: int) -> Tuple[List[int], List[float]]:
    """Largest-remainder rounding of the paper's path sizes.

    Returns integer sizes (each >= 1, summing to ``n - 1``) and the
    ideal fractional sizes, both indexed by ``k = i·q + j``.
    """
    c = p * q
    if n - 1 < c:
        raise PreprocessingError(
            f"need n >= p*q + 1 = {c + 1} nodes, got {n}"
        )
    ideal = [
        n ** ((k + 1) / c) - n ** (k / c) for k in range(c)
    ]
    # Scale so the ideal masses total n - 1 (they do up to the root).
    total_ideal = sum(ideal)
    scaled = [x * (n - 1) / total_ideal for x in ideal]
    sizes = [max(1, int(math.floor(x))) for x in scaled]
    remainder = (n - 1) - sum(sizes)
    if remainder < 0:
        # Floors of tiny masses were bumped to 1; shave the largest.
        order = sorted(range(c), key=lambda k: -sizes[k])
        idx = 0
        while remainder < 0:
            k = order[idx % c]
            if sizes[k] > 1:
                sizes[k] -= 1
                remainder += 1
            idx += 1
    else:
        fractions = sorted(
            range(c), key=lambda k: -(scaled[k] - math.floor(scaled[k]))
        )
        for k in fractions:
            if remainder == 0:
                break
            sizes[k] += 1
            remainder -= 1
    assert sum(sizes) == n - 1
    return sizes, ideal


def lower_bound_tree(epsilon: float, n: int) -> LowerBoundTree:
    """Build the §5.2 counterexample for the given ``ε`` and ``n``.

    Args:
        epsilon: Target slack; the theorem shows stretch at least
            ``9 - ε`` for schemes with ``o(n^{(ε/60)²})``-bit tables.
        n: Number of nodes; must be at least ``p·q + 1``.
    """
    if not 0.0 < epsilon < 8.0:
        raise PreprocessingError("epsilon must be in (0, 8)")
    p = math.ceil(72.0 / epsilon) + 6
    q = math.ceil(48.0 / epsilon) - 4
    sizes, ideal = _spoke_sizes(n, p, q)

    graph = nx.Graph()
    root = 0
    graph.add_node(root)
    path_nodes: Dict[Tuple[int, int], List[int]] = {}
    path_middle: Dict[Tuple[int, int], int] = {}
    spoke_weight: Dict[Tuple[int, int], float] = {}
    ideal_sizes: Dict[Tuple[int, int], float] = {}
    next_id = 1
    for i in range(p):
        for j in range(q):
            k = i * q + j
            count = sizes[k]
            ids = list(range(next_id, next_id + count))
            next_id += count
            for a, b in zip(ids, ids[1:]):
                graph.add_edge(a, b, weight=1.0 / n)
            middle = ids[len(ids) // 2]
            weight = (2.0**i) * (q + j)
            graph.add_node(middle)
            graph.add_edge(root, middle, weight=weight)
            path_nodes[(i, j)] = ids
            path_middle[(i, j)] = middle
            spoke_weight[(i, j)] = weight
            ideal_sizes[(i, j)] = ideal[k]
    return LowerBoundTree(
        graph=graph,
        epsilon=epsilon,
        p=p,
        q=q,
        root=root,
        path_nodes=path_nodes,
        path_middle=path_middle,
        spoke_weight=spoke_weight,
        ideal_sizes=ideal_sizes,
    )
