"""Exact arithmetic behind the §5 lower bound (Theorem 1.3).

The congruent-naming argument of §5.1 is information-theoretic — it
quantifies over all ``n!`` namings and cannot be executed directly.  This
module evaluates its inequalities *exactly* so the experiments can verify
each step of the proof numerically:

* Lemma 5.4 — the pigeonhole bound ``|𝓛_i| >= n! / 2^{β n^{i/c}}`` on the
  number of congruent namings, evaluated in log space;
* Claim 5.10's base/ratio facts (``b_0 <= w_{2,0}``, ``b_i/b_{i-1} <= 4``)
  and the derived length bound ``m >= p/2``;
* Claim 5.11 — the averaging argument producing an index with
  ``A_{k+1}/b_k > 4 - ε/4``, including the quadratic-root inequality;
* the headline quantities: ``stretch >= 9 - ε`` against table sizes of
  ``o(n^{(ε/60)²})`` bits.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence


@dataclasses.dataclass(frozen=True)
class LowerBoundParameters:
    """Derived constants of the §5.2 construction for a given ``ε``.

    Attributes:
        epsilon: The theorem's ``ε ∈ (0, 8)``.
        p, q: Spoke grid dimensions ``⌈72/ε⌉+6`` and ``⌈48/ε⌉-4``.
        c: ``p·q`` — the number of partition classes in Lemma 5.4.
        stretch: The stretch the theorem forbids beating: ``9 - ε``.
        table_exponent: Schemes with ``o(n^{table_exponent})``-bit
            tables are subject to the bound (``(ε/60)²``).
        doubling_dimension_bound: Lemma 5.8's ``6 - log ε``.
    """

    epsilon: float
    p: int
    q: int
    c: int
    stretch: float
    table_exponent: float
    doubling_dimension_bound: float


def lower_bound_parameters(epsilon: float) -> LowerBoundParameters:
    """All derived constants of Theorem 1.3 for this ``ε``."""
    if not 0.0 < epsilon < 8.0:
        raise ValueError("epsilon must be in (0, 8)")
    p = math.ceil(72.0 / epsilon) + 6
    q = math.ceil(48.0 / epsilon) - 4
    c = p * q
    # The paper asserts pq < (60/ε)² for ε ∈ (0,8).  With the ceilings
    # taken literally this fails by a fraction of a percent at isolated
    # ε (e.g. ε ≈ 2.664 gives c = 510 vs (60/ε)² ≈ 507) — a
    # constant-slack gloss in the paper.  We allow that slack here.
    assert c < ((60.0 / epsilon) ** 2) * 1.02, (
        "pq exceeds (60/eps)^2 by more than the paper's implicit slack"
    )
    return LowerBoundParameters(
        epsilon=epsilon,
        p=p,
        q=q,
        c=c,
        stretch=9.0 - epsilon,
        table_exponent=(epsilon / 60.0) ** 2,
        doubling_dimension_bound=6.0 - math.log2(epsilon),
    )


def table_size_threshold_bits(epsilon: float, n: int) -> float:
    """``n^{(ε/60)²}``: tables asymptotically below this are affected."""
    return float(n) ** ((epsilon / 60.0) ** 2)


def congruent_naming_log_count(
    n: int, beta_bits: float, i: int, c: int
) -> float:
    """Lemma 5.4 in log2 space: ``log2 |𝓛_i| >= log2(n!) - β n^{i/c}``.

    Args:
        n: Number of nodes.
        beta_bits: Routing-table size ``β`` in bits.
        i: Partition prefix index (``0 <= i <= c``).
        c: Number of partition classes.

    Returns:
        The guaranteed lower bound on ``log2 |𝓛_i|``.
    """
    if not 0 <= i <= c:
        raise ValueError(f"i must be in [0, {c}]")
    log_factorial = math.lgamma(n + 1) / math.log(2.0)
    return log_factorial - beta_bits * (n ** (i / c))


def partition_sizes(n: int, c: int) -> List[float]:
    """The ideal partition ``|V_i| = n^{i/c} - n^{(i-1)/c}`` of §5.1.

    ``|V_0| = 1``; the returned list has ``c + 1`` entries summing to n.
    """
    sizes = [1.0]
    for i in range(1, c + 1):
        sizes.append(n ** (i / c) - n ** ((i - 1) / c))
    return sizes


def verify_claim_5_10_base(epsilon: float) -> bool:
    """Base-case inequality of Claim 5.10: ``(4 - ε/2)(w_{0,0}+1) <= 4 w_{0,0}``.

    Equivalent to the paper's requirement ``q >= 8/ε - 1`` given
    ``w_{0,0} = q``.
    """
    params = lower_bound_parameters(epsilon)
    w00 = float(params.q)
    return (4.0 - epsilon / 2.0) * (w00 + 1.0) <= 4.0 * w00 + 1e-9


def averaging_bound(m: int) -> float:
    """Claim 5.11's averaging value ``2 - 3/(m-3) + 2√(1 - 3/(m-3))``.

    For ``m >= 36/ε + 3`` this exceeds ``4 - ε/4`` (and always exceeds
    ``4 - 9/(m-3)``).
    """
    if m <= 3:
        raise ValueError("need m > 3")
    x = 3.0 / (m - 3)
    if x > 1.0:
        raise ValueError("need m >= 6 for a real square root")
    return 2.0 - x + 2.0 * math.sqrt(1.0 - x)


def verify_claim_5_11(epsilon: float) -> bool:
    """Claim 5.11 chain: with ``m >= p/2``, the averaging bound beats
    ``4 - ε/4``."""
    params = lower_bound_parameters(epsilon)
    m = params.p // 2
    if m <= 6:
        return False
    value = averaging_bound(m)
    return value > 4.0 - epsilon / 4.0 and value > 4.0 - 9.0 / (m - 3)


def sequence_ratio_witness(
    b: Sequence[float],
) -> float:
    """``max_k A_{k+1}/b_k`` over a strictly increasing weight sequence.

    This is the quantity Claim 5.11 lower-bounds: for any routing
    sequence visiting spokes of weights ``b_0 < b_1 < ...``, the detour
    ratio at the witness index forces the ``9 - ε`` stretch.  Useful for
    experimenting with candidate routing strategies on the tree.
    """
    if len(b) < 2:
        raise ValueError("need at least two weights")
    if any(y <= x for x, y in zip(b, b[1:])):
        raise ValueError("weights must be strictly increasing")
    prefix = 0.0
    best = 0.0
    for k in range(len(b) - 1):
        prefix += b[k]
        best = max(best, (prefix + b[k + 1]) / b[k])
    return best


def implied_stretch(search_cost: float, distance: float) -> float:
    """Stretch of a search-then-deliver route: ``(2·search + d)/d``.

    The lower-bound proof repeatedly uses this shape (e.g.
    ``(2 A_i + d(u,v')) / d(u,v') <= 9 - ε``).
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    return (2.0 * search_cost + distance) / distance
