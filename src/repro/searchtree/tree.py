"""Search trees on balls: Definition 3.2, Algorithms 1-2, Definition 4.2.

A *search tree* ``T(c, r)`` organizes the nodes of a ball ``B_c(r)`` into
a virtual tree of geometrically shrinking nets:

* ``U_0 = {c}``; for ``1 <= i <= ⌊log(εr)⌋``, ``U_i`` is a
  ``2^{⌊log(εr)⌋ - i}``-net of the ball minus all earlier levels.  The
  ``{U_i}`` partition the ball, each node connects to its nearest node one
  level up, and the root-to-leaf height is at most ``(1+ε)r`` (Eqn. 3).
* (key, data) pairs are stored by Algorithm 1: sort pairs by key, walk the
  tree depth-first, and hand each newly visited node the next ``⌈k/m⌉``
  pairs.  Every node also records the key range held by its subtree and by
  each child's subtree.
* Algorithm 2 looks a key up by descending from the root into whichever
  child's range contains the key, then returns to the root; the round trip
  costs at most ``2(1+ε)r``.

The *search tree II* ``T'(c, r)`` of Definition 4.2 (used by the
scale-free labeled scheme) caps the number of net levels at ``⌈log n⌉``;
any leftover nodes — which exist only when ``εr > n`` — are chained into
paths hanging off their nearest bottom-level net point, with virtual edge
weight ``2εr/n`` (Lemma 4.3 realizes these edges at that cost).  Pass
``level_cap=metric.log_n`` to build this variant.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.core.bitcount import bits_for_id
from repro.core.types import NodeId, PreprocessingError
from repro.metric.graph_metric import GraphMetric
from repro.nets.rnet import greedy_rnet


@dataclasses.dataclass
class SearchOutcome:
    """Result of one Algorithm-2 lookup.

    Attributes:
        found: Whether the key was present.
        data: The stored datum (``None`` when not found).
        trail: Nodes visited, starting and ending at the tree root
            (root, ..., deepest, ..., root).
        cost: Total distance travelled: shortest-path distance summed
            over consecutive trail entries.
    """

    found: bool
    data: Optional[object]
    trail: List[NodeId]
    cost: float


class SearchTree:
    """A search tree over the ball ``B_c(r)`` (or an explicit node set).

    Args:
        metric: Ambient metric.
        center: Ball center ``c`` (the tree root).
        radius: Ball radius ``r``.
        epsilon: The scheme's ``ε`` (controls the level count).
        members: Node set to organize; defaults to ``B_c(r)``.  Must
            contain ``center``.
        level_cap: If given, build the Definition 4.2 variant with at most
            this many net levels plus Voronoi chains underneath.
    """

    def __init__(
        self,
        metric: GraphMetric,
        center: NodeId,
        radius: float,
        epsilon: float,
        members: Optional[Sequence[NodeId]] = None,
        level_cap: Optional[int] = None,
    ) -> None:
        if radius < 0:
            raise PreprocessingError(f"negative ball radius {radius}")
        self._metric = metric
        self._center = center
        self._radius = radius
        self._epsilon = epsilon
        if members is None:
            members = metric.ball(center, radius)
        self._members = sorted(set(members))
        if center not in set(self._members):
            raise PreprocessingError("center must belong to the ball")

        self._parent: Dict[NodeId, NodeId] = {}
        self._children: Dict[NodeId, List[NodeId]] = {center: []}
        self._chain_edges = 0
        self._build_levels(level_cap)

        # Populated by store().
        self._pairs_at: Dict[NodeId, Dict[Hashable, object]] = {}
        self._subtree_range: Dict[NodeId, Tuple[Hashable, Hashable]] = {}
        self._stored = False

    # ------------------------------------------------------------------
    # Construction (Definitions 3.2 / 4.2)
    # ------------------------------------------------------------------

    def _build_levels(self, level_cap: Optional[int]) -> None:
        metric = self._metric
        scaled = self._epsilon * self._radius
        full_levels = int(math.floor(math.log2(scaled))) if scaled >= 2 else 0
        levels = full_levels
        if level_cap is not None:
            levels = min(levels, level_cap)

        remaining = [v for v in self._members if v != self._center]
        previous = [self._center]
        for i in range(1, levels + 1):
            net_radius = float(2 ** (full_levels - i))
            tier = greedy_rnet(metric, net_radius, universe=remaining)
            self._attach_tier(tier, previous)
            remaining = [v for v in remaining if v not in set(tier)]
            previous = tier
            if not remaining:
                break

        if remaining and levels == full_levels:
            # Uncapped trees always bottom out at a 1-net (= everything);
            # only degenerate radii (εr < 2) leave nodes here.  Attach
            # them directly to the root, as a one-level tree.
            self._attach_tier(remaining, previous)
        elif remaining:
            self._attach_chains(remaining, previous)

    def _attach_tier(
        self, tier: Sequence[NodeId], previous: Sequence[NodeId]
    ) -> None:
        for v in sorted(tier):
            parent = self._metric.nearest_in(v, list(previous))
            self._parent[v] = parent
            self._children.setdefault(parent, []).append(v)
            self._children.setdefault(v, [])

    def _attach_chains(
        self, leftover: Sequence[NodeId], sites: Sequence[NodeId]
    ) -> None:
        """Definition 4.2 (ii): chain leftover nodes under Voronoi sites."""
        groups: Dict[NodeId, List[NodeId]] = {}
        for v in sorted(leftover):
            site = self._metric.nearest_in(v, list(sites))
            groups.setdefault(site, []).append(v)
        for site, chain in groups.items():
            previous = site
            for v in chain:
                self._parent[v] = previous
                self._children.setdefault(previous, []).append(v)
                self._children.setdefault(v, [])
                previous = v
                self._chain_edges += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> NodeId:
        return self._center

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def nodes(self) -> List[NodeId]:
        """All tree nodes (= the ball members)."""
        return list(self._members)

    @property
    def member_set(self) -> FrozenSet[NodeId]:
        """The tree's dependency set: structure, attachment, and lookup
        costs all derive from the distance rows of these nodes."""
        cached = self.__dict__.get("_member_set")
        if cached is None:
            cached = frozenset(self._members)
            self._member_set = cached
        return cached

    def rebase(self, metric: GraphMetric) -> None:
        """Point at an edited metric (churn pipeline).

        Only valid when every member's distance row is unchanged — then
        all distances the tree can ever read are identical and the tree
        is bit-for-bit the one a cold build would produce.
        """
        self._metric = metric

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def chain_edge_count(self) -> int:
        """Number of Definition 4.2 chain edges (0 for plain trees)."""
        return self._chain_edges

    def parent_of(self, v: NodeId) -> Optional[NodeId]:
        return self._parent.get(v)

    def children_of(self, v: NodeId) -> List[NodeId]:
        return list(self._children.get(v, []))

    def depth_cost(self, v: NodeId) -> float:
        """Distance from the root to ``v`` along tree edges."""
        cost = 0.0
        while v != self._center:
            parent = self._parent[v]
            cost += self._metric.distance(parent, v)
            v = parent
        return cost

    def height(self) -> float:
        """Largest root-to-node distance along tree edges.

        Bounded by ``(1 + O(ε)) r`` (paper Eqn. 3 / Def. 4.2 remark).
        """
        return max(self.depth_cost(v) for v in self._members)

    def max_degree(self) -> int:
        return max(len(kids) for kids in self._children.values())

    def _dfs_preorder(self) -> List[NodeId]:
        order: List[NodeId] = []
        stack = [self._center]
        while stack:
            v = stack.pop()
            order.append(v)
            for child in reversed(self._children.get(v, [])):
                stack.append(child)
        return order

    # ------------------------------------------------------------------
    # Algorithm 1: store (key, data) pairs
    # ------------------------------------------------------------------

    def store(self, pairs: Dict[Hashable, object]) -> None:
        """Distribute ``pairs`` over the tree (Algorithm 1).

        Keys must be totally ordered (int or str).  Each node receives a
        contiguous chunk of ``⌈k/m⌉`` sorted pairs in depth-first visit
        order, then subtree key ranges are recorded bottom-up.
        """
        order = self._dfs_preorder()
        sorted_keys = sorted(pairs)
        chunk = max(1, math.ceil(len(sorted_keys) / len(order)))
        self._pairs_at = {}
        cursor = 0
        for v in order:
            take = sorted_keys[cursor : cursor + chunk]
            cursor += len(take)
            self._pairs_at[v] = {key: pairs[key] for key in take}
        if cursor < len(sorted_keys):  # pragma: no cover - chunk >= k/m
            raise PreprocessingError("store() failed to place all pairs")

        self._subtree_range = {}
        for v in reversed(order):
            keys: List[Hashable] = list(self._pairs_at.get(v, ()))
            bounds = [
                self._subtree_range[c]
                for c in self._children.get(v, [])
                if c in self._subtree_range
            ]
            lows = [b[0] for b in bounds] + keys
            highs = [b[1] for b in bounds] + keys
            if lows:
                self._subtree_range[v] = (min(lows), max(highs))
        self._stored = True

    # ------------------------------------------------------------------
    # Algorithm 2: search
    # ------------------------------------------------------------------

    def search(self, key: Hashable) -> SearchOutcome:
        """Look up ``key`` (Algorithm 2): descend by range, round trip."""
        if not self._stored:
            raise PreprocessingError("search() before store()")
        trail = [self._center]
        u = self._center
        descended = True
        while descended:
            descended = False
            for child in self._children.get(u, []):
                bounds = self._subtree_range.get(child)
                if bounds is not None and bounds[0] <= key <= bounds[1]:
                    u = child
                    trail.append(u)
                    descended = True
                    break
        found = key in self._pairs_at.get(u, {})
        data = self._pairs_at[u].get(key) if found else None
        back = list(reversed(trail[:-1]))
        trail = trail + back
        cost = sum(
            self._metric.distance(a, b) for a, b in zip(trail, trail[1:])
        )
        return SearchOutcome(found=found, data=data, trail=trail, cost=cost)

    def lookup_everywhere(self, key: Hashable) -> bool:
        """Whether ``key`` is stored anywhere in the tree (test helper)."""
        return any(key in held for held in self._pairs_at.values())

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    def storage_bits(self, key_bits: int, data_bits: int) -> Dict[NodeId, int]:
        """Bits each tree node must keep for this tree.

        Per node: one parent link label + one link label per child
        (underlying-scheme labels, ``⌈log n⌉`` bits each), its own subtree
        range and each child's range (two keys each), and its stored
        pairs (key + data each).
        """
        if not self._stored:
            raise PreprocessingError("storage_bits() before store()")
        label_bits = bits_for_id(self._metric.n)
        out: Dict[NodeId, int] = {}
        for v in self._members:
            links = len(self._children.get(v, [])) + (
                1 if v != self._center else 0
            )
            ranges = 1 + len(self._children.get(v, []))
            pairs = len(self._pairs_at.get(v, {}))
            out[v] = (
                links * label_bits
                + ranges * 2 * key_bits
                + pairs * (key_bits + data_bits)
            )
        return out

    def __repr__(self) -> str:
        return (
            f"SearchTree(center={self._center}, r={self._radius:.3f}, "
            f"size={self.size})"
        )
