"""Search trees over balls (paper Def. 3.2 / Def. 4.2, Algorithms 1-2)."""

from repro.searchtree.tree import SearchOutcome, SearchTree

__all__ = ["SearchOutcome", "SearchTree"]
