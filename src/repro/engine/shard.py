"""Sharded serving mode: partition-sliced tables in shared memory.

Each shard owns the logical node partition ``node % shards == shard_id``
and is served by a dedicated single-worker process pool pinned to a
**partition slice** of the compiled tables
(``CompiledTables.slice_partition``): the arrays a shard's owned nodes
index live in a per-shard ``multiprocessing.shared_memory`` segment
only that worker maps, while the arrays every shard needs (search-tree
slots, landmark predecessor rows, labels, directories) live in one
shared segment mapped by all workers — one physical copy for the whole
service, never replicated per worker.

Packet registers are shared-memory too: ``route_arrays`` packs the
machine state into a per-batch register segment, and a serving round
sends each worker only the *index set* of the packets it owns.  The
worker gathers those rows from the mapped registers, advances them
sweep by sweep until each completes or its current node crosses into
another shard's partition (foreign packets are parked by masking their
phase to DONE for the sweep and restored afterwards), and scatters the
rows back — no pickled register dicts in either direction.  Every live
packet makes at least one transition per round, so rounds terminate
exactly when a single-process sweep loop would.

Results are bit-identical to :class:`~repro.engine.batch.BatchRouter`
on the same pairs, in the same injection-index order: sharding changes
where a sweep runs, never what it computes.  Path recording is not
supported in sharded mode (the per-sweep trace lives in the workers).

There is no module-global table state in the driver process: every
router instance owns its pools and segments, so routers never alias
each other's tables, and ``shards == 1`` degrades to an in-process
sweep loop over ``self.tables``.  Use as a context manager or call
:meth:`ShardedRouter.close`; a ``weakref`` finalizer tears down pools
and unlinks segments if a router is dropped without closing.
"""

from __future__ import annotations

import concurrent.futures
import weakref
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.engine import shm as _shm
from repro.engine.batch import (
    _MACHINES,
    PH_DONE,
    EngineError,
    _validate_pairs,
)
from repro.engine.compiler import CompiledTables

__all__ = ["ShardedRouter"]


def _advance_partition(
    tables: CompiledTables, shards: int, shard_id: int, st: Dict[str, np.ndarray]
) -> int:
    """Advance one shard's packets until each completes or emigrates.

    ``st`` holds only this shard's packet rows; foreign packets (current
    node outside the partition) are parked by masking their phase to
    DONE for the sweep and restored afterwards, so the sweep kernels —
    and therefore the partition-sliced row gathers — never see them.
    Returns the number of sweeps run.
    """
    step = _MACHINES[tables.kind][1]
    arrays = tables.arrays
    max_sweeps = int(tables.scalars["max_sweeps"])
    sweeps = 0
    while True:
        foreign = (st["phase"] != PH_DONE) & (
            st["cur"] % shards != shard_id
        )
        parked = st["phase"][foreign]
        st["phase"][foreign] = PH_DONE
        if not (st["phase"] != PH_DONE).any():
            st["phase"][foreign] = parked
            return sweeps
        if sweeps >= max_sweeps:
            raise EngineError(
                f"shard {shard_id} exceeded {max_sweeps} sweeps"
            )
        step(tables, arrays, st, st["phase"].copy())
        st["phase"][foreign] = parked
        sweeps += 1


# ----------------------------------------------------------------------
# Worker side.  Each shard's pool has exactly one worker process, so
# this state is per-shard by construction — it exists only inside that
# worker and is installed by the pool initializer, never in the driver.
# ----------------------------------------------------------------------

_WORKER: Dict[str, object] = {}


def _init_partition_worker(
    shard_id: int,
    shards: int,
    kind: str,
    n: int,
    header_bits: int,
    leg_names: Tuple[str, ...],
    scalars: Dict[str, float],
    shared_name: str,
    shared_manifest: _shm.Manifest,
    slice_name: str,
    slice_manifest: _shm.Manifest,
) -> None:
    """Attach this worker to its table segments (no table pickling)."""
    shared_seg = _shm.attach(shared_name)
    slice_seg = _shm.attach(slice_name)
    arrays = _shm.views(shared_seg, shared_manifest)
    arrays.update(_shm.views(slice_seg, slice_manifest, shards=shards))
    _WORKER["tables"] = CompiledTables(
        kind=kind,
        n=n,
        header_bits=header_bits,
        leg_names=leg_names,
        arrays=arrays,
        scalars=scalars,
        partition=(shard_id, shards),
        sliced=tuple(record[0] for record in slice_manifest),
    )
    _WORKER["shard_id"] = shard_id
    _WORKER["shards"] = shards
    _WORKER["segments"] = (shared_seg, slice_seg)
    _WORKER["registers"] = None


def _worker_ready() -> int:
    """No-op probe: forces worker spawn + segment attach at pool
    construction instead of inside the first serving round."""
    if "shard_id" not in _WORKER:
        raise EngineError("shard worker initializer did not run")
    return int(_WORKER["shard_id"])  # type: ignore[arg-type]


def _register_views(
    name: str, manifest: _shm.Manifest
) -> Dict[str, np.ndarray]:
    """Mapped register arrays for the current batch, cached by segment
    name (a new batch's segment evicts the previous mapping)."""
    cached = _WORKER.get("registers")
    if cached is not None and cached[0] == name:  # type: ignore[index]
        return cached[2]  # type: ignore[index]
    if cached is not None:
        _, seg, old_views = cached  # type: ignore[misc]
        _WORKER["registers"] = None
        old_views.clear()
        try:
            seg.close()
        except BufferError:  # pragma: no cover - stray view refs
            pass
    seg = _shm.attach(name)
    view_dict = _shm.views(seg, manifest)
    _WORKER["registers"] = (name, seg, view_dict)
    return view_dict


def _serve_round(
    reg_name: str, reg_manifest: _shm.Manifest, idx: np.ndarray
) -> int:
    """Advance the owned packets at ``idx`` in the mapped registers."""
    tables = _WORKER.get("tables")
    if tables is None:
        raise EngineError("shard worker initializer did not run")
    registers = _register_views(reg_name, reg_manifest)
    st = {key: values[idx] for key, values in registers.items()}
    sweeps = _advance_partition(
        tables,  # type: ignore[arg-type]
        _WORKER["shards"],  # type: ignore[arg-type]
        _WORKER["shard_id"],  # type: ignore[arg-type]
        st,
    )
    for key, values in st.items():
        registers[key][idx] = values
    return sweeps


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------


def _teardown(
    pools: List[concurrent.futures.ProcessPoolExecutor],
    segments: List[object],
) -> None:
    """Shut down worker pools and release every named segment."""
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)
    for seg in segments:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - stray view refs
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class ShardedRouter:
    """Serve batches across per-shard workers over sliced shared tables.

    ``shards <= 1`` degrades to the in-process sweep loop (the serial
    fallback convention of ``parallel_map``) over ``self.tables``.  Use
    as a context manager or call :meth:`close` to tear the pool down;
    an unreferenced router is torn down by its finalizer.
    """

    def __init__(self, tables: CompiledTables, shards: int = 2) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.tables = tables
        self.shards = shards
        self._pools: List[concurrent.futures.ProcessPoolExecutor] = []
        self._segments: List[object] = []
        self._slice_bytes: List[int] = [0]
        self._shared_bytes = tables.nbytes()
        if shards > 1:
            slices = [
                tables.slice_partition(shard, shards)
                for shard in range(shards)
            ]
            self._slice_bytes = [sl.sliced_bytes() for sl in slices]
            self._shared_bytes = slices[0].shared_bytes()
            shared_arrays = {
                key: arr
                for key, arr in slices[0].arrays.items()
                if key not in slices[0].sliced
            }
            shared_seg, shared_manifest = _shm.pack(shared_arrays)
            self._segments.append(shared_seg)
            for shard, sl in enumerate(slices):
                slice_seg, slice_manifest = _shm.pack(
                    {key: sl.arrays[key] for key in sl.sliced}
                )
                self._segments.append(slice_seg)
                self._pools.append(
                    concurrent.futures.ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_init_partition_worker,
                        initargs=(
                            shard,
                            shards,
                            tables.kind,
                            tables.n,
                            tables.header_bits,
                            tables.leg_names,
                            tables.scalars,
                            shared_seg.name,
                            shared_manifest,
                            slice_seg.name,
                            slice_manifest,
                        ),
                    )
                )
            for pool in self._pools:
                pool.submit(_worker_ready).result()
        self._finalizer = weakref.finalize(
            self, _teardown, list(self._pools), list(self._segments)
        )

    def partition_bytes(self) -> Dict[str, object]:
        """Per-worker table residency: ``replicated`` is what the old
        full-replication mode shipped to every worker; ``per_worker``
        is what each worker maps now (its slice plus the shared
        segment, which is one physical copy across all workers)."""
        full = self.tables.nbytes()
        return {
            "replicated": full,
            "shared": self._shared_bytes,
            "sliced": list(self._slice_bytes),
            "per_worker": [
                self._shared_bytes + sliced
                for sliced in self._slice_bytes
            ],
        }

    def worker_pids(self) -> List[int]:
        """PIDs of the live shard workers (empty for ``shards == 1``)."""
        pids: List[int] = []
        for pool in self._pools:
            pids.extend(
                proc.pid for proc in pool._processes.values()
            )
        return pids

    def route_arrays(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> Dict[str, object]:
        """Route pairs; identical output contract to ``BatchRouter``
        (injection-index order), minus path recording."""
        T = self.tables
        src, tgt = _validate_pairs(T.n, sources, targets)
        st = _MACHINES[T.kind][0](T, src, tgt)
        if not self._pools:
            rounds = 0
            if (st["phase"] != PH_DONE).any():
                _advance_partition(T, 1, 0, st)
                rounds = 1
            return self._collect(st, rounds)
        max_rounds = int(T.scalars["max_sweeps"])
        reg_seg, manifest = _shm.pack(st)
        registers = None
        try:
            registers = _shm.views(reg_seg, manifest)
            rounds = 0
            while True:
                live = registers["phase"] != PH_DONE
                if not live.any():
                    break
                if rounds >= max_rounds:
                    raise EngineError(
                        f"{int(live.sum())} packets still live after "
                        f"{rounds} serving rounds"
                    )
                owner = registers["cur"] % self.shards
                futures = []
                for shard in range(self.shards):
                    idx = np.nonzero(live & (owner == shard))[0]
                    if idx.size:
                        futures.append(
                            self._pools[shard].submit(
                                _serve_round, reg_seg.name, manifest, idx
                            )
                        )
                for future in futures:
                    future.result()
                rounds += 1
            out = self._collect(registers, rounds)
        finally:
            registers = None
            try:
                reg_seg.close()
            except BufferError:  # pragma: no cover - stray view refs
                pass
            reg_seg.unlink()
        return out

    def _collect(
        self, st: Dict[str, np.ndarray], rounds: int
    ) -> Dict[str, object]:
        width = len(self.tables.leg_names)
        out: Dict[str, object] = {
            "target": st["res_target"].copy(),
            "cost": st["res_cost"].copy(),
            "legs": st["legs"][:, :width].copy() if width else None,
            "rounds": rounds,
        }
        if "zerohop" in st:
            out["zerohop"] = st["zerohop"].copy()
        return out

    def close(self) -> None:
        self._finalizer()
        self._pools = []
        self._segments = []

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
