"""Sharded serving mode: node-partitioned batch routing over processes.

Each worker process receives the compiled tables **once**, through the
pool initializer (the same scheme ``RoutingScheme.evaluate`` ships
schemes with — see ``repro.pipeline.parallel``), and owns the logical
node partition ``node % shards == shard_id``.  A packet is *owned* by
the shard of its current node; a serving round dispatches every live
packet to its owner, the owner advances it sweep by sweep until it
completes or its current node crosses into another shard's partition,
and the driver merges the returned register subsets and re-dispatches.
Every live packet makes at least one transition per round, so rounds
terminate exactly when a single-process sweep loop would.

Tables are *replicated* per worker (the partition governs packet
ownership and migration, not array slicing); slicing the compiled
arrays down to each shard's partition is future work — see DESIGN.md.

Results are bit-identical to :class:`~repro.engine.batch.BatchRouter`
on the same pairs, in the same injection-index order: sharding changes
where a sweep runs, never what it computes.  Path recording is not
supported in sharded mode (the per-sweep trace lives in the workers).
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batch import _MACHINES, PH_DONE, EngineError
from repro.engine.compiler import CompiledTables

__all__ = ["ShardedRouter"]

# Per-worker state, installed once by the pool initializer.
_WORKER_TABLES: Optional[CompiledTables] = None
_WORKER_SHARDS: int = 0


def _init_shard_worker(tables: CompiledTables, shards: int) -> None:
    """Pool initializer: receive the compiled tables once per worker."""
    global _WORKER_TABLES, _WORKER_SHARDS
    _WORKER_TABLES = tables
    _WORKER_SHARDS = shards


def _advance_shard(
    item: Tuple[int, np.ndarray, Dict[str, np.ndarray]],
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Advance one shard's packets until each completes or emigrates.

    Foreign packets (current node outside this shard's partition) are
    parked by masking their phase to DONE for the sweep and restored
    afterwards, so the sweep kernels never see them.
    """
    shard_id, idx, st = item
    tables = _WORKER_TABLES
    assert tables is not None, "shard worker initializer did not run"
    shards = _WORKER_SHARDS
    step = _MACHINES[tables.kind][1]
    arrays = tables.arrays
    max_sweeps = int(tables.scalars["max_sweeps"])
    sweeps = 0
    while True:
        foreign = (st["phase"] != PH_DONE) & (
            st["cur"] % shards != shard_id
        )
        parked = st["phase"][foreign]
        st["phase"][foreign] = PH_DONE
        if not (st["phase"] != PH_DONE).any():
            st["phase"][foreign] = parked
            return idx, st
        if sweeps >= max_sweeps:
            raise EngineError(
                f"shard {shard_id} exceeded {max_sweeps} sweeps"
            )
        step(tables, arrays, st, st["phase"].copy())
        st["phase"][foreign] = parked
        sweeps += 1


class ShardedRouter:
    """Serve batches across a process pool of node-partition owners.

    ``shards <= 1`` degrades to the in-process sweep loop (the serial
    fallback convention of ``parallel_map``).  Use as a context manager
    or call :meth:`close` to tear the pool down.
    """

    def __init__(self, tables: CompiledTables, shards: int = 2) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.tables = tables
        self.shards = shards
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        if shards > 1:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=shards,
                initializer=_init_shard_worker,
                initargs=(tables, shards),
            )
        else:
            _init_shard_worker(tables, 1)

    def route_arrays(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> Dict[str, object]:
        """Route pairs; identical output contract to ``BatchRouter``
        (injection-index order), minus path recording."""
        T = self.tables
        src = np.ascontiguousarray(sources, dtype=np.int64)
        tgt = np.ascontiguousarray(targets, dtype=np.int64)
        if src.ndim != 1 or src.shape != tgt.shape:
            raise ValueError("sources/targets must be equal-length 1-d")
        st = _MACHINES[T.kind][0](T, src, tgt)
        max_rounds = int(T.scalars["max_sweeps"])
        rounds = 0
        while True:
            live = st["phase"] != PH_DONE
            if not live.any():
                break
            if rounds >= max_rounds:
                raise EngineError(
                    f"{int(live.sum())} packets still live after "
                    f"{rounds} serving rounds"
                )
            owner = st["cur"] % self.shards
            items = []
            for shard_id in range(self.shards):
                idx = np.nonzero(live & (owner == shard_id))[0]
                if idx.size:
                    items.append(
                        (shard_id, idx, {k: v[idx] for k, v in st.items()})
                    )
            if self._pool is not None:
                outs = list(self._pool.map(_advance_shard, items))
            else:
                outs = [_advance_shard(item) for item in items]
            for idx, sub in outs:
                for key, values in sub.items():
                    st[key][idx] = values
            rounds += 1
        width = len(T.leg_names)
        out: Dict[str, object] = {
            "target": st["res_target"].copy(),
            "cost": st["res_cost"].copy(),
            "legs": st["legs"][:, :width].copy() if width else None,
            "rounds": rounds,
        }
        if "zerohop" in st:
            out["zerohop"] = st["zerohop"].copy()
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ShardedRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
