"""``repro.engine`` — compiled batch routing over flat numpy tables.

The schemes in :mod:`repro.schemes` are *front-end objects*: per-node
tables held in python dicts, walked one packet at a time by the
interpreted ``route()`` loops.  This subsystem is the compiled hot core
behind them (the hwtHls split — see ROADMAP item 2):

* :func:`compile_scheme` lowers a built scheme's tables into
  :class:`CompiledTables` — flat numpy arrays (dense next-hop/distance
  matrices, padded ring matrices, slot-packed search/Voronoi trees,
  CSR-packed vicinity entries, sorted edge-weight keys);
* :class:`BatchRouter` advances *all* live packets one transition per
  sweep over those arrays (gather/argmax per sweep, no per-packet
  python on the hot path), bit-identical to the interpreted loops;
* :class:`ShardedRouter` serves batches across per-shard worker
  processes pinned to partition slices of the compiled tables
  (``CompiledTables.slice_partition``) held in named shared-memory
  segments — shared arrays are mapped once for the whole service, and
  packet registers live in a per-batch segment so serving rounds
  exchange only index sets while packets migrate between owners.

Every compiled route is property-tested bit-identical (path, cost,
legs, header bits, delivered target) to ``route()`` and to RouteTrace
replay across every scheme and fixture — see ``tests/test_engine.py``.
"""

from repro.engine.batch import BatchRouter, EngineError
from repro.engine.compiler import (
    CompiledTables,
    EngineUnsupported,
    PartitionRows,
    compile_scheme,
)
from repro.engine.shard import ShardedRouter

__all__ = [
    "BatchRouter",
    "CompiledTables",
    "EngineError",
    "EngineUnsupported",
    "PartitionRows",
    "ShardedRouter",
    "compile_scheme",
]
