"""Table compiler: lower built schemes into flat numpy arrays.

Each ``compile_*`` function reads one scheme's per-node python tables
(dicts of ring entries, search trees, Voronoi trees, vicinity maps) and
emits a :class:`CompiledTables` — a named bundle of numpy arrays the
batch router can gather from without touching python objects.

Layouts (see DESIGN.md, "engine" section, for the full picture):

* **edge weights** — directed edges as a sorted int64 key array
  ``EKEY = u*n + v`` with a parallel float64 ``EW`` (the exact
  ``edge_weight`` values, including the normalization divide, computed
  once at compile time so runtime additions are bit-identical);
* **dense LUTs** — canonical next hops ``NH[n, n]`` and distances
  ``D[n, n]`` for the doubling-metric schemes (which only exist at
  small ``n``; :data:`DENSE_LIMIT` guards the allocation).  The
  landmark scheme compiles *without* dense LUTs so the lazy substrate's
  rows-materialized invariant survives compilation;
* **ring matrices** — per-node ring entries padded to a rectangle, in
  the exact iteration order of the interpreted scan (ascending level,
  then dict insertion order); padding rows use ``lo=1 > hi=0`` so they
  can never cover a label and first-match is a plain ``argmax``;
* **search-tree slots** — every search tree flattened into one global
  slot space: per slot its graph node, parent slot, padded
  ``(child slot, range lo, range hi)`` entries in child order, and
  padded ``(key, data)`` pairs;
* **Voronoi tree slots** — every ``T_c(j)`` tree-router flattened the
  same way with DFS ``tin/tout`` intervals per slot, plus a sorted
  ``(tree, node) -> slot`` key table for phase entry;
* **vicinity CSR** — the landmark scheme's per-node vicinity maps as a
  single sorted int64 key array ``u*n + name`` with parallel target /
  home / next-hop columns.

All floating-point values are stored exactly as the interpreted tables
hold them; the batch router replays the interpreted loops' *addition
order* (see ``batch.py``), which together makes compiled costs
bit-identical, not merely close.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.types import PreprocessingError

#: Largest n for which the compiler will allocate dense n×n LUTs.  The
#: doubling-metric schemes are only buildable far below this; the
#: landmark scheme never requests dense tables.
DENSE_LIMIT = 2048


class EngineUnsupported(PreprocessingError):
    """The scheme (or its size regime) has no compiled lowering."""


class PartitionRows:
    """Compact row slice of a node-indexed array for one shard.

    Holds only the rows of nodes ``shard_id, shard_id + shards, ...``
    and remaps ``[node]`` / ``[node, ...]`` gathers to the local row
    ``node // shards``.  Valid only for nodes the shard owns — the
    sweep kernels guarantee this by construction (sliced arrays are
    gathered exclusively at a packet's sweep-start current node, and
    foreign packets are parked before every sweep).
    """

    __slots__ = ("data", "shards")

    def __init__(self, data: np.ndarray, shards: int) -> None:
        self.data = data
        self.shards = shards

    def __getitem__(self, key):
        if isinstance(key, tuple):
            return self.data[(key[0] // self.shards,) + key[1:]]
        return self.data[key // self.shards]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def dtype(self):
        return self.data.dtype


#: Per-kind arrays whose first axis is node-indexed and which the sweep
#: kernels gather *only* at a packet's sweep-start current node — the
#: rows a shard's owned nodes index, safe to slice per partition.
#: Everything else (search/Voronoi slot tables, landmark predecessor
#: rows, labels, hierarchy parents, directories) is gathered at
#: arbitrary nodes or slots and stays shared.
_RING_ROWS = ("R_LO", "R_HI", "R_X", "R_LVL", "R_D")
_PARTITION_ROWS: Dict[str, Tuple[str, ...]] = {
    "shortest_path": ("NH",),
    "cowen": ("NH",),
    "labeled_nonsf": ("NH",) + _RING_ROWS,
    "nameind_simple": ("NH", "D") + _RING_ROWS,
    "labeled_sf": ("NH", "D", "RU") + _RING_ROWS,
    "nameind_sf": ("NH", "D", "RU") + _RING_ROWS,
    "landmark": (),
}

#: Per-kind CSR tables keyed ``u * n + x`` with ``u`` the current node:
#: key array name -> parallel payload array names.  Slicing by key
#: prefix preserves sort order, so ``_lookup_sorted`` works unchanged.
_PARTITION_CSR: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "shortest_path": {"EKEY": ("EW",)},
    "cowen": {"EKEY": ("EW",), "CL_KEY": ()},
    "labeled_nonsf": {"EKEY": ("EW",)},
    "nameind_simple": {"EKEY": ("EW",)},
    "labeled_sf": {"EKEY": ("EW",)},
    "nameind_sf": {"EKEY": ("EW",)},
    "landmark": {
        "EKEY": ("EW",),
        "VIC_KEY": ("VIC_TGT", "VIC_HOME", "VIC_HOP"),
    },
}


@dataclasses.dataclass
class CompiledTables:
    """A scheme's routing tables, lowered to flat numpy arrays.

    Attributes:
        kind: Program selector for the batch router.
        n: Node count.
        header_bits: The scheme's (constant) header size.
        leg_names: Result-leg dict keys in scheme insertion order
            (empty for schemes whose results carry no legs).
        arrays: All compiled arrays, keyed by layout name.
        scalars: Compile-time constants (epsilon, level counts, guards).
        partition: ``(shard_id, shards)`` for a partition slice made by
            :meth:`slice_partition`, ``None`` for full tables.
        sliced: Names of the arrays that were partition-sliced (empty
            for full tables); the rest are shared across shards.
    """

    kind: str
    n: int
    header_bits: int
    leg_names: Tuple[str, ...]
    arrays: Dict[str, np.ndarray]
    scalars: Dict[str, float]
    partition: Optional[Tuple[int, int]] = None
    sliced: Tuple[str, ...] = ()

    def nbytes(self) -> int:
        return int(sum(a.nbytes for a in self.arrays.values()))

    def sliced_bytes(self) -> int:
        """Bytes held in partition-sliced arrays (0 for full tables)."""
        return int(
            sum(self.arrays[name].nbytes for name in self.sliced)
        )

    def shared_bytes(self) -> int:
        """Bytes in the arrays every shard shares (one physical copy
        when served out of shared memory)."""
        return self.nbytes() - self.sliced_bytes()

    def slice_partition(self, shard_id: int, shards: int) -> "CompiledTables":
        """A view of these tables for the shard owning ``node % shards
        == shard_id``: node-row arrays and CSR tables keyed by current
        node keep only the owned rows; every other array is the same
        (shared) object.  ``shards == 1`` returns the identity slice.

        The landmark kind additionally exposes the *full* vicinity key
        array as ``VIC_MEMBER_KEY``: the shortcut-break membership
        re-check happens at a packet's post-hop node, which may lie in
        a foreign partition, so that one lookup needs global keys (the
        payload columns are only ever gathered at owned nodes and stay
        sliced).
        """
        if self.partition is not None:
            raise ValueError("cannot re-slice a partition slice")
        if shards < 1 or not 0 <= shard_id < shards:
            raise ValueError(
                f"invalid partition ({shard_id}, {shards})"
            )
        if shards == 1:
            return dataclasses.replace(
                self, arrays=dict(self.arrays), partition=(0, 1)
            )
        arrays: Dict[str, np.ndarray] = {}
        sliced: List[str] = []
        row_names = _PARTITION_ROWS[self.kind]
        csr_spec = _PARTITION_CSR[self.kind]
        for name, arr in self.arrays.items():
            if name in row_names:
                arrays[name] = PartitionRows(
                    np.ascontiguousarray(arr[shard_id::shards]), shards
                )
                sliced.append(name)
            else:
                arrays[name] = arr
        for key_name, payload_names in csr_spec.items():
            keys = self.arrays[key_name]
            own = np.nonzero(
                (keys >= 0) & ((keys // self.n) % shards == shard_id)
            )[0]
            if own.size:
                arrays[key_name] = np.ascontiguousarray(keys[own])
                for name in payload_names:
                    arrays[name] = np.ascontiguousarray(
                        self.arrays[name][own]
                    )
            else:
                # Keep the compiler's empty-table sentinel so
                # _lookup_sorted never sees a zero-length key array.
                arrays[key_name] = np.asarray([-1], dtype=np.int64)
                for name in payload_names:
                    arrays[name] = np.zeros(
                        1, dtype=self.arrays[name].dtype
                    )
            sliced.append(key_name)
            sliced.extend(payload_names)
        if self.kind == "landmark":
            arrays["VIC_MEMBER_KEY"] = self.arrays["VIC_KEY"]
        return dataclasses.replace(
            self,
            arrays=arrays,
            partition=(shard_id, shards),
            sliced=tuple(sliced),
        )


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------


def _edge_tables(metric) -> Dict[str, np.ndarray]:
    """Sorted directed-edge keys and exact per-hop weights."""
    n = metric.n
    scale = metric.scale
    keys: List[int] = []
    weights: List[float] = []
    for u, v, data in metric.graph.edges(data=True):
        w = float(data.get("weight", 1.0)) / scale
        keys.append(u * n + v)
        weights.append(w)
        keys.append(v * n + u)
        weights.append(w)
    order = np.argsort(np.asarray(keys, dtype=np.int64))
    return {
        "EKEY": np.asarray(keys, dtype=np.int64)[order],
        "EW": np.asarray(weights, dtype=np.float64)[order],
    }


def _require_dense(metric) -> None:
    if metric.n > DENSE_LIMIT:
        raise EngineUnsupported(
            f"dense LUT compilation capped at n={DENSE_LIMIT} "
            f"(got n={metric.n}); only the landmark scheme compiles "
            "without dense tables"
        )


def _dense_next_hops(metric) -> np.ndarray:
    """Canonical next hops ``NH[u, v]`` (NH[u, u] = u)."""
    _require_dense(metric)
    n = metric.n
    nh = np.empty((n, n), dtype=np.int64)
    for u in metric.nodes:
        nh[u] = [metric.next_hop(u, v) for v in range(n)]
    return nh


def _dense_distances(metric) -> np.ndarray:
    _require_dense(metric)
    return np.stack(
        [
            np.asarray(metric.distances_from(u), dtype=np.float64)
            for u in metric.nodes
        ]
    )


def _naming_tables(scheme) -> Dict[str, np.ndarray]:
    n = scheme.metric.n
    name_of = np.asarray(scheme._name_of, dtype=np.int64)
    node_of = np.empty(n, dtype=np.int64)
    node_of[name_of] = np.arange(n, dtype=np.int64)
    return {"NAMEOF": name_of, "NODEOF": node_of}


def _pack_rings(rings: List[Dict], n: int, prefix: str) -> Dict[str, np.ndarray]:
    """Padded ring matrices in exact interpreted scan order.

    ``rings[u][i]`` is a dict ``x -> (lo, hi, dist)``; the interpreted
    scan iterates ``sorted(rings[u])`` then dict insertion order, so
    rows are emitted in that order and first-match is argmax over the
    cover mask.
    """
    rows: List[List[Tuple[int, int, int, int, float]]] = []
    for u in range(n):
        entries = []
        for i in sorted(rings[u]):
            for x, (lo, hi, dist) in rings[u][i].items():
                entries.append((i, x, lo, hi, dist))
        rows.append(entries)
    width = max(1, max((len(r) for r in rows), default=1))
    lo = np.ones((n, width), dtype=np.int64)
    hi = np.zeros((n, width), dtype=np.int64)
    xs = np.zeros((n, width), dtype=np.int64)
    lvl = np.zeros((n, width), dtype=np.int64)
    dist = np.zeros((n, width), dtype=np.float64)
    for u, entries in enumerate(rows):
        for col, (i, x, elo, ehi, edist) in enumerate(entries):
            lvl[u, col] = i
            xs[u, col] = x
            lo[u, col] = elo
            hi[u, col] = ehi
            dist[u, col] = edist
    return {
        prefix + "LO": lo,
        prefix + "HI": hi,
        prefix + "X": xs,
        prefix + "LVL": lvl,
        prefix + "D": dist,
    }


class _SearchPack:
    """Flatten many :class:`SearchTree` objects into one slot space."""

    def __init__(self) -> None:
        self.node: List[int] = []
        self.parent: List[int] = []
        self.children: List[List[Tuple[int, int, int]]] = []
        self.keys: List[List[Tuple[int, int]]] = []
        self.roots: List[int] = []

    def add(self, tree) -> int:
        slot_of: Dict[int, int] = {}
        order = tree._dfs_preorder()
        for v in order:
            slot_of[v] = len(self.node)
            self.node.append(v)
            self.parent.append(-1)
            self.children.append([])
            self.keys.append(
                sorted(
                    (int(k), int(d))
                    for k, d in tree._pairs_at.get(v, {}).items()
                )
            )
        for v in order:
            s = slot_of[v]
            # The interpreted descend skips children without a stored
            # subtree range; child order is otherwise preserved.
            for child in tree._children.get(v, []):
                bounds = tree._subtree_range.get(child)
                if bounds is not None:
                    self.children[s].append(
                        (slot_of[child], int(bounds[0]), int(bounds[1]))
                    )
            parent = tree._parent.get(v)
            if parent is not None:
                self.parent[s] = slot_of[parent]
        tid = len(self.roots)
        self.roots.append(slot_of[tree.root])
        return tid

    def arrays(self) -> Dict[str, np.ndarray]:
        slots = max(1, len(self.node))
        width = max(1, max((len(c) for c in self.children), default=1))
        kwidth = max(1, max((len(k) for k in self.keys), default=1))
        ch_slot = np.zeros((slots, width), dtype=np.int64)
        ch_lo = np.ones((slots, width), dtype=np.int64)
        ch_hi = np.zeros((slots, width), dtype=np.int64)
        k_key = np.full((slots, kwidth), -1, dtype=np.int64)
        k_data = np.zeros((slots, kwidth), dtype=np.int64)
        for s, kids in enumerate(self.children):
            for col, (cs, lo, hi) in enumerate(kids):
                ch_slot[s, col] = cs
                ch_lo[s, col] = lo
                ch_hi[s, col] = hi
        for s, pairs in enumerate(self.keys):
            for col, (k, d) in enumerate(pairs):
                k_key[s, col] = k
                k_data[s, col] = d
        return {
            "S_NODE": np.asarray(self.node or [0], dtype=np.int64),
            "S_PARENT": np.asarray(self.parent or [-1], dtype=np.int64),
            "S_CH_SLOT": ch_slot,
            "S_CH_LO": ch_lo,
            "S_CH_HI": ch_hi,
            "S_K_KEY": k_key,
            "S_K_DATA": k_data,
            "S_ROOT": np.asarray(self.roots or [0], dtype=np.int64),
        }


class _TreeRouterPack:
    """Flatten :class:`TreeRouter` instances (DFS-interval routing)."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.node: List[int] = []
        self.tin: List[int] = []
        self.tout: List[int] = []
        self.parent: List[int] = []
        self.children: List[List[Tuple[int, int, int]]] = []
        self.roots: List[int] = []
        self.slot_keys: List[int] = []
        self.slot_vals: List[int] = []

    def add(self, router) -> int:
        tid = len(self.roots)
        tree = router.tree
        slot_of: Dict[int, int] = {}
        for v in sorted(router._tin):
            slot_of[v] = len(self.node)
            self.node.append(v)
            self.tin.append(router._tin[v])
            self.tout.append(router._tout[v])
            self.parent.append(-1)
            self.children.append([])
            self.slot_keys.append(tid * self.n + v)
            self.slot_vals.append(slot_of[v])
        for v, s in slot_of.items():
            if v != tree.root:
                self.parent[s] = slot_of[tree.parent_of(v)]
            # next_hop scans children_of(v) in order; keep it.
            for child in tree.children_of(v):
                self.children[s].append(
                    (slot_of[child], router._tin[child], router._tout[child])
                )
        self.roots.append(slot_of[tree.root])
        return tid

    def arrays(self) -> Dict[str, np.ndarray]:
        slots = max(1, len(self.node))
        width = max(1, max((len(c) for c in self.children), default=1))
        ch_slot = np.zeros((slots, width), dtype=np.int64)
        ch_tin = np.ones((slots, width), dtype=np.int64)
        ch_tout = np.zeros((slots, width), dtype=np.int64)
        for s, kids in enumerate(self.children):
            for col, (cs, tin, tout) in enumerate(kids):
                ch_slot[s, col] = cs
                ch_tin[s, col] = tin
                ch_tout[s, col] = tout
        order = np.argsort(np.asarray(self.slot_keys or [0], dtype=np.int64))
        return {
            "T_NODE": np.asarray(self.node or [0], dtype=np.int64),
            "T_TIN": np.asarray(self.tin or [0], dtype=np.int64),
            "T_TOUT": np.asarray(self.tout or [0], dtype=np.int64),
            "T_PARENT": np.asarray(self.parent or [-1], dtype=np.int64),
            "T_CH_SLOT": ch_slot,
            "T_CH_TIN": ch_tin,
            "T_CH_TOUT": ch_tout,
            "T_ROOT": np.asarray(self.roots or [0], dtype=np.int64),
            "T_SLOT_KEY": np.asarray(
                self.slot_keys or [0], dtype=np.int64
            )[order],
            "T_SLOT_VAL": np.asarray(
                self.slot_vals or [0], dtype=np.int64
            )[order],
        }


def _hierarchy_tables(hierarchy, n: int) -> Dict[str, np.ndarray]:
    lbl = np.asarray(
        [hierarchy.label(v) for v in range(n)], dtype=np.int64
    )
    top = hierarchy.top_level
    par = np.full((top + 1, n), -1, dtype=np.int64)
    for i in range(1, top + 1):
        for x in hierarchy.net(i - 1):
            par[i, x] = hierarchy.parent(x, i)
    return {"LBL": lbl, "PAR": par}


# ----------------------------------------------------------------------
# Per-scheme compilers
# ----------------------------------------------------------------------


def _compile_shortest_path(scheme) -> CompiledTables:
    metric = scheme.metric
    arrays = {
        **_edge_tables(metric),
        **_naming_tables(scheme),
        "NH": _dense_next_hops(metric),
    }
    return CompiledTables(
        kind="shortest_path",
        n=metric.n,
        header_bits=scheme.header_bits(),
        leg_names=(),
        arrays=arrays,
        scalars={"max_sweeps": 4 * metric.n + 16},
    )


def _compile_cowen(scheme) -> CompiledTables:
    metric = scheme.metric
    n = metric.n
    cluster_keys: List[int] = []
    for u in metric.nodes:
        for v in scheme._clusters[u]:
            cluster_keys.append(u * n + v)
    is_lm = np.zeros(n, dtype=bool)
    is_lm[list(scheme._landmarks)] = True
    arrays = {
        **_edge_tables(metric),
        "NH": _dense_next_hops(metric),
        "HOME": np.asarray(scheme._home, dtype=np.int64),
        "CL_KEY": np.sort(np.asarray(cluster_keys or [-1], dtype=np.int64)),
        "IS_LM": is_lm,
    }
    return CompiledTables(
        kind="cowen",
        n=n,
        header_bits=scheme.header_bits(),
        leg_names=("direct", "to_landmark", "from_landmark"),
        arrays=arrays,
        scalars={"max_sweeps": 4 * n + 16},
    )


def _compile_lns_core(scheme) -> Dict[str, np.ndarray]:
    """Ring walk tables shared by Lemma 3.1 and Theorem 1.4."""
    metric = scheme.metric
    return {
        **_edge_tables(metric),
        "NH": _dense_next_hops(metric),
        **_pack_rings(scheme._rings, metric.n, "R_"),
        **_hierarchy_tables(scheme._hierarchy, metric.n),
    }


def _compile_labeled_nonsf(scheme) -> CompiledTables:
    metric = scheme.metric
    return CompiledTables(
        kind="labeled_nonsf",
        n=metric.n,
        header_bits=scheme.header_bits(),
        leg_names=("walk",),
        arrays=_compile_lns_core(scheme),
        scalars={
            "max_sweeps": 4
            * metric.n
            * (scheme._hierarchy.top_level + 2)
            + 16,
        },
    )


def _compile_nameind_simple(scheme) -> CompiledTables:
    from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme

    if not isinstance(scheme._underlying, NonScaleFreeLabeledScheme):
        raise EngineUnsupported(
            "nameind_simple compiles only over the Lemma 3.1 underlying"
        )
    metric = scheme.metric
    n = metric.n
    hierarchy = scheme._hierarchy
    pack = _SearchPack()
    levels = len(list(hierarchy.levels))
    tree_of = np.full((levels, n), -1, dtype=np.int64)
    for i in hierarchy.levels:
        for x, tree in scheme._trees[i].items():
            tree_of[i, x] = pack.add(tree)
    arrays = {
        **_compile_lns_core(scheme._underlying),
        **_naming_tables(scheme),
        **pack.arrays(),
        "D": _dense_distances(metric),
        "NS_TREE": tree_of,
    }
    return CompiledTables(
        kind="nameind_simple",
        n=n,
        header_bits=scheme.header_bits(),
        leg_names=("zoom", "search", "final"),
        arrays=arrays,
        scalars={
            "top_level": hierarchy.top_level,
            "max_sweeps": 16 * n * (hierarchy.top_level + 2) + 64,
        },
    )


def _compile_lsf_core(scheme) -> Tuple[Dict[str, np.ndarray], Dict[str, float], "_SearchPack"]:
    """Algorithm 5 tables (standalone and as the Theorem 1.1 inner machine).

    Returns the array dict, scalar dict, and the *open* search pack so
    the scale-free name-independent compiler can append its own trees
    into the same slot space.
    """
    metric = scheme.metric
    n = metric.n
    log_n = metric.log_n
    arrays = {
        **_edge_tables(metric),
        "NH": _dense_next_hops(metric),
        "D": _dense_distances(metric),
        **_pack_rings(scheme._rings, n, "R_"),
        **_hierarchy_tables(scheme._hierarchy, n),
    }
    # r_u(u, j) columns with an +inf sentinel at j = log_n + 1 so the
    # first-j scan of _size_level_for vectorizes as one argmax.
    ru = np.empty((n, log_n + 2), dtype=np.float64)
    for u in metric.nodes:
        for j in range(log_n + 1):
            ru[u, j] = metric.r_u(u, j)
        ru[u, log_n + 1] = math.inf
    arrays["RU"] = ru
    arrays["VC"] = np.asarray(scheme._voronoi_center, dtype=np.int64)
    tr_pack = _TreeRouterPack(n)
    s_pack = _SearchPack()
    tree_id = np.full((log_n + 1, n), -1, dtype=np.int64)
    searcher_id = np.full((log_n + 1, n), -1, dtype=np.int64)
    for j in range(log_n + 1):
        for c, router in scheme._routers[j].items():
            tree_id[j, c] = tr_pack.add(router)
        for c, searcher in scheme._searchers[j].items():
            searcher_id[j, c] = s_pack.add(searcher)
    arrays.update(tr_pack.arrays())
    arrays["TR_ID"] = tree_id
    arrays["SR_ID"] = searcher_id
    from repro.metric.graph_metric import DISTANCE_SLACK

    scalars = {
        "eps": float(scheme.params.epsilon),
        "log_n": log_n,
        "slack": float(DISTANCE_SLACK),
        "max_sweeps": 16 * n * (scheme._hierarchy.top_level + 2) + 64,
    }
    return arrays, scalars, s_pack


def _compile_labeled_sf(scheme) -> CompiledTables:
    arrays, scalars, s_pack = _compile_lsf_core(scheme)
    arrays.update(s_pack.arrays())
    return CompiledTables(
        kind="labeled_sf",
        n=scheme.metric.n,
        header_bits=scheme.header_bits(),
        leg_names=("walk", "to_center", "search", "final"),
        arrays=arrays,
        scalars=scalars,
    )


def _compile_nameind_sf(scheme) -> CompiledTables:
    from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme

    if not isinstance(scheme._underlying, ScaleFreeLabeledScheme):
        raise EngineUnsupported(
            "nameind_sf compiles only over the Theorem 1.2 underlying"
        )
    metric = scheme.metric
    n = metric.n
    hierarchy = scheme._hierarchy
    arrays, scalars, s_pack = _compile_lsf_core(scheme._underlying)
    levels = hierarchy.top_level + 1
    own = np.full((levels, n), -1, dtype=np.int64)
    hlj = np.full((levels, n), -1, dtype=np.int64)
    hlc = np.full((levels, n), -1, dtype=np.int64)
    for (i, u), tree in scheme._own_trees.items():
        own[i, u] = s_pack.add(tree)
    packed_of: Dict[Tuple[int, int], int] = {}
    for (j, c), tree in scheme._packed_trees.items():
        packed_of[(j, c)] = s_pack.add(tree)
    log_n = metric.log_n
    packed_id = np.full((log_n + 1, n), -1, dtype=np.int64)
    for (j, c), tid in packed_of.items():
        packed_id[j, c] = tid
    for (i, u), (j, c) in scheme._h_links.items():
        hlj[i, u] = j
        hlc[i, u] = c
    arrays.update(s_pack.arrays())
    arrays.update(_naming_tables(scheme))
    arrays["NSF_OWN"] = own
    arrays["NSF_HLJ"] = hlj
    arrays["NSF_HLC"] = hlc
    arrays["NSF_PACKED"] = packed_id
    scalars = dict(scalars)
    scalars["top_level"] = hierarchy.top_level
    scalars["max_sweeps"] = 64 * n * (hierarchy.top_level + 2) + 64
    return CompiledTables(
        kind="nameind_sf",
        n=n,
        header_bits=scheme.header_bits(),
        leg_names=("zoom", "search", "final"),
        arrays=arrays,
        scalars=scalars,
    )


def _compile_landmark(scheme) -> CompiledTables:
    """The Internet-scale scheme: compiled purely from existing arrays.

    No dense LUTs — the landmark/predecessor matrices and vicinity maps
    the scheme already holds are the whole table set, so compilation
    preserves the lazy substrate's rows-materialized ≪ n invariant.
    """
    metric = scheme.metric
    n = metric.n
    k = len(scheme._landmarks)
    lm_index = np.full(n, -1, dtype=np.int64)
    for i, landmark in enumerate(scheme._landmarks):
        lm_index[landmark] = i
    name_of = np.asarray(scheme._name_of, dtype=np.int64)
    node_of = np.empty(n, dtype=np.int64)
    node_of[name_of] = np.arange(n, dtype=np.int64)
    # Directory rows, dense by name.
    dir_node = np.empty(n, dtype=np.int64)
    dir_home = np.empty(n, dtype=np.int64)
    for idx in range(k):
        for name, (node, home) in scheme._directory[idx].items():
            dir_node[name] = node
            dir_home[name] = home
    landmarks = np.asarray(scheme._landmarks, dtype=np.int64)
    names = np.arange(n, dtype=np.int64)
    # Vicinity CSR: global sorted key u*n + name.
    vic_keys: List[int] = []
    vic_tgt: List[int] = []
    vic_home: List[int] = []
    vic_hop: List[int] = []
    for u in metric.nodes:
        for name in sorted(scheme._vicinity[u]):
            v, home, hop, _ = scheme._vicinity[u][name]
            vic_keys.append(u * n + name)
            vic_tgt.append(v)
            vic_home.append(home)
            vic_hop.append(hop)
    arrays = {
        **_edge_tables(metric),
        "NAMEOF": name_of,
        "NODEOF": node_of,
        "PRED": np.asarray(scheme._landmark_pred, dtype=np.int64),
        "LM_INDEX": lm_index,
        "DIR_LM": landmarks[names % k],
        "DIR_ROW": names % k,
        "DIR_NODE": dir_node,
        "DIR_HOME": dir_home,
        "VIC_KEY": np.asarray(vic_keys or [-1], dtype=np.int64),
        "VIC_TGT": np.asarray(vic_tgt or [0], dtype=np.int64),
        "VIC_HOME": np.asarray(vic_home or [0], dtype=np.int64),
        "VIC_HOP": np.asarray(vic_hop or [0], dtype=np.int64),
    }
    return CompiledTables(
        kind="landmark",
        n=n,
        header_bits=scheme.header_bits(),
        leg_names=("vicinity", "to_directory", "to_home", "descent"),
        arrays=arrays,
        scalars={
            "tree_depth": scheme._tree_depth,
            "max_sweeps": 2 * (4 * n + 4 * scheme._tree_depth) + 64,
        },
    )


def compile_scheme(scheme) -> CompiledTables:
    """Lower ``scheme``'s tables into a :class:`CompiledTables`."""
    from repro.schemes.cowen_landmark import CowenLandmarkScheme
    from repro.schemes.labeled_nonscalefree import NonScaleFreeLabeledScheme
    from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
    from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme
    from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
    from repro.schemes.nameind_simple import SimpleNameIndependentScheme
    from repro.schemes.shortest_path import ShortestPathScheme

    dispatch = [
        (ShortestPathScheme, _compile_shortest_path),
        (CowenLandmarkScheme, _compile_cowen),
        (SimpleNameIndependentScheme, _compile_nameind_simple),
        (ScaleFreeNameIndependentScheme, _compile_nameind_sf),
        (ScaleFreeLabeledScheme, _compile_labeled_sf),
        (NonScaleFreeLabeledScheme, _compile_labeled_nonsf),
        (LandmarkNameIndependentScheme, _compile_landmark),
    ]
    for cls, compiler in dispatch:
        if isinstance(scheme, cls):
            return compiler(scheme)
    raise EngineUnsupported(
        f"no compiled lowering for {type(scheme).__qualname__}"
    )
