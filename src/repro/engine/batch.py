"""Vectorized batch router: advance all live packets one step per sweep.

The router is a register machine over :class:`~repro.engine.compiler.
CompiledTables`.  Every packet carries a small set of integer/float
registers (current node, phase, walk label, accumulated leg costs, …);
one *sweep* advances every live packet by exactly one transition — a
hop, one search-tree move, or a control action (directory resolution,
phase entry) — using numpy gathers and argmax reductions, with no
per-packet python on the hot path.

**Determinism contract** (see also the simulator's event queue): results
are returned in *injection-index order* — index ``i`` of the output
arrays is pair ``i`` of the input arrays, always.  All tie-breaking
inside a sweep replays the interpreted loops' first-match scans
(``argmax`` over the same entry order the python dicts iterate in), so
a batch route is a pure function of ``(tables, sources, targets)`` —
batch size, packet interleaving, and sweep count cannot change any
result.

**Bit-identity.** Costs are accumulated in the same order the
interpreted loops add them: per-hop weights fold left-to-right into the
active leg register, sub-route totals fold into the caller's leg on
completion, and the final cost is the left fold of the legs in scheme
insertion order — reproducing ``sum()`` bit for bit, not just to
tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.types import RouteResult
from repro.engine.compiler import CompiledTables

__all__ = ["BatchRouter", "EngineError"]


class EngineError(RuntimeError):
    """The compiled machine reached a state the interpreter never would."""


# Phase register values.  One machine (kind) is active per router, so
# constants are shared freely across kinds.
PH_DONE = 0
PH_SP = 1
PH_COWEN = 2
PH_WALK = 3  # ring walk (Lemma 3.1 / zoom & final legs of Theorem 1.4)
PH_SDESC = 4  # search-tree descent
PH_SASC = 5  # search-tree ascent (round trip back to the root)
PH_LWALK = 6  # Algorithm 5 phase 1
PH_LCENTER = 7  # tree-route to the Voronoi center
PH_LSDESC = 8
PH_LSASC = 9
PH_LFINAL = 10  # tree-route center -> destination
PH_LRET = 11  # Algorithm 5 returned (dispatch on the continuation)
PH_NDECIDE = 12  # Algorithm 4: own tree vs H-link
PH_NSDESC = 13  # outer (name) search descent
PH_NSASC = 14
PH_MITER = 15  # landmark scheme main loop
PH_MDESC = 16  # landmark scheme source-routed descent

# Walk roles for the simple name-independent machine.
ROLE_ZOOM = 0
ROLE_FINAL = 1

# Continuations for Algorithm 5 calls made by the scale-free
# name-independent machine.
C_STANDALONE = 0
C_HOUT = 1  # detour u -> serving center
C_HBACK = 2  # detour center -> u
C_ZOOM = 3
C_FINAL = 4


# ----------------------------------------------------------------------
# Small shared kernels
# ----------------------------------------------------------------------


def _validate_pairs(n: int, sources: Sequence[int], targets: Sequence[int]):
    """Shared input contract of BatchRouter and ShardedRouter: int64
    equal-length 1-d arrays with every node id inside ``[0, n)``."""
    src = np.ascontiguousarray(sources, dtype=np.int64)
    tgt = np.ascontiguousarray(targets, dtype=np.int64)
    if src.ndim != 1 or src.shape != tgt.shape:
        raise ValueError("sources/targets must be equal-length 1-d")
    if src.size and (
        src.min() < 0 or src.max() >= n
        or tgt.min() < 0 or tgt.max() >= n
    ):
        raise ValueError("node id out of range")
    return src, tgt


def _lookup_sorted(keys: np.ndarray, q: np.ndarray):
    """(membership mask, position) of each ``q`` in sorted ``keys``."""
    pos = np.searchsorted(keys, q)
    pos = np.minimum(pos, keys.size - 1)
    return keys[pos] == q, pos


def _edge_w(A: Dict[str, np.ndarray], n: int, u: np.ndarray, v: np.ndarray):
    """Exact per-hop weights; raises if any (u, v) is not a graph edge."""
    ok, pos = _lookup_sorted(A["EKEY"], u * n + v)
    if not ok.all():
        bad = int(np.nonzero(~ok)[0][0])
        raise EngineError(
            f"hop {int(u[bad])} -> {int(v[bad])} is not a graph edge"
        )
    return A["EW"][pos]


def _fold_legs(legs: np.ndarray, width: int) -> np.ndarray:
    """Left fold of the leg columns — ``sum(legs.values())`` bit for bit."""
    total = np.zeros(legs.shape[0], dtype=np.float64)
    for col in range(width):
        total = total + legs[:, col]
    return total


def _first_cover(lo: np.ndarray, hi: np.ndarray, key: np.ndarray):
    """First column (row-wise) with ``lo <= key <= hi``; padding never
    covers (padded entries carry ``lo=1 > hi=0``)."""
    cover = (lo <= key[:, None]) & (key[:, None] <= hi)
    return cover.any(axis=1), cover.argmax(axis=1)


# ----------------------------------------------------------------------
# Search-tree round trip (Algorithm 2)
# ----------------------------------------------------------------------


def _start_search(A, st, idx: np.ndarray, tree_ids: np.ndarray, key) -> None:
    if idx.size and (tree_ids < 0).any():
        raise EngineError("packet entered a node with no search tree")
    root = A["S_ROOT"][tree_ids]
    st["s_slot"][idx] = root
    st["s_root"][idx] = root
    st["s_key"][idx] = key
    st["call"][idx] = 0.0


def _search_desc(A, st, m: np.ndarray, asc_phase: int) -> None:
    """One descent move per packet; leaves switch to the ascent phase."""
    if not m.size:
        return
    slot = st["s_slot"][m]
    has, first = _first_cover(
        A["S_CH_LO"][slot], A["S_CH_HI"][slot], st["s_key"][m]
    )
    down = m[has]
    if down.size:
        new_slot = A["S_CH_SLOT"][slot[has], first[has]]
        a = A["S_NODE"][slot[has]]
        b = A["S_NODE"][new_slot]
        st["call"][down] += A["D"][a, b]
        st["s_slot"][down] = new_slot
        st["cur"][down] = b
    deepest = m[~has]
    if deepest.size:
        dslot = slot[~has]
        match = A["S_K_KEY"][dslot] == st["s_key"][deepest][:, None]
        st["s_found"][deepest] = match.any(axis=1)
        st["s_data"][deepest] = A["S_K_DATA"][dslot, match.argmax(axis=1)]
        st["phase"][deepest] = asc_phase


def _search_asc(A, st, m: np.ndarray) -> np.ndarray:
    """One ascent move per packet; returns packets back at the root."""
    if not m.size:
        return m
    at_root = st["s_slot"][m] == st["s_root"][m]
    climb = m[~at_root]
    if climb.size:
        slot = st["s_slot"][climb]
        parent = A["S_PARENT"][slot]
        a = A["S_NODE"][slot]
        b = A["S_NODE"][parent]
        st["call"][climb] += A["D"][a, b]
        st["s_slot"][climb] = parent
        st["cur"][climb] = b
    return m[at_root]


# ----------------------------------------------------------------------
# DFS-interval tree routing (TreeRouter.next_hop)
# ----------------------------------------------------------------------


def _tree_move(A, n: int, st, m: np.ndarray) -> np.ndarray:
    """One tree hop per packet toward label ``trt``; returns arrivals."""
    if not m.size:
        return m
    slot = st["tr_slot"][m]
    t = st["trt"][m]
    tin = A["T_TIN"][slot]
    arrived = tin == t
    move = m[~arrived]
    if move.size:
        mslot = slot[~arrived]
        mt = t[~arrived]
        down = (tin[~arrived] < mt) & (mt <= A["T_TOUT"][mslot])
        new_slot = np.empty(move.size, dtype=np.int64)
        if down.any():
            dslot = mslot[down]
            has, first = _first_cover(
                A["T_CH_TIN"][dslot], A["T_CH_TOUT"][dslot], mt[down]
            )
            if not has.all():
                raise EngineError("tree label not covered by any child")
            new_slot[down] = A["T_CH_SLOT"][dslot, first]
        up = ~down
        if up.any():
            parent = A["T_PARENT"][mslot[up]]
            if (parent < 0).any():
                raise EngineError("tree route climbed past the root")
            new_slot[up] = parent
        a = A["T_NODE"][mslot]
        b = A["T_NODE"][new_slot]
        st["call"][move] += _edge_w(A, n, a, b)
        st["tr_slot"][move] = new_slot
        st["cur"][move] = b
    return m[arrived]


# ----------------------------------------------------------------------
# Ring walk (Lemma 3.1)
# ----------------------------------------------------------------------


def _lns_walk(A, n: int, st, m: np.ndarray) -> np.ndarray:
    """One walk hop per packet; returns packets whose label matched at
    sweep start (the interpreted loop's entry check)."""
    if not m.size:
        return m
    arrived = A["LBL"][st["cur"][m]] == st["wlabel"][m]
    move = m[~arrived]
    if move.size:
        cur = st["cur"][move]
        has, first = _first_cover(
            A["R_LO"][cur], A["R_HI"][cur], st["wlabel"][move]
        )
        if not has.all():
            raise EngineError("no ring entry covers the walk label")
        x = A["R_X"][cur, first]
        if (x == cur).any():
            raise EngineError("ring walk stalled (epsilon too large?)")
        nxt = A["NH"][cur, x]
        st["call"][move] += _edge_w(A, n, cur, nxt)
        st["cur"][move] = nxt
    return m[arrived]


# ----------------------------------------------------------------------
# Per-kind machines
# ----------------------------------------------------------------------


def _base_state(T: CompiledTables, src: np.ndarray, phase: int):
    b = src.size
    return {
        "cur": src.copy(),
        "phase": np.full(b, phase, dtype=np.int64),
        "legs": np.zeros((b, 4), dtype=np.float64),
        "call": np.zeros(b, dtype=np.float64),
        "res_target": np.full(b, -1, dtype=np.int64),
        "res_cost": np.zeros(b, dtype=np.float64),
    }


def _init_shortest_path(T, src, tgt):
    st = _base_state(T, src, PH_SP)
    st["tgt"] = tgt.copy()
    return st


def _step_shortest_path(T, A, st, ph):
    m = np.nonzero(ph == PH_SP)[0]
    if not m.size:
        return
    arrived = st["cur"][m] == st["tgt"][m]
    done = m[arrived]
    st["res_cost"][done] = st["call"][done]
    st["res_target"][done] = st["tgt"][done]
    st["phase"][done] = PH_DONE
    move = m[~arrived]
    if move.size:
        cur = st["cur"][move]
        nxt = A["NH"][cur, st["tgt"][move]]
        st["call"][move] += _edge_w(A, T.n, cur, nxt)
        st["cur"][move] = nxt


def _init_cowen(T, src, tgt):
    st = _base_state(T, src, PH_COWEN)
    st["tgt"] = tgt.copy()
    st["home"] = T.arrays["HOME"][tgt]
    st["via"] = np.zeros(src.size, dtype=bool)
    return st


def _step_cowen(T, A, st, ph):
    n = T.n
    m = np.nonzero(ph == PH_COWEN)[0]
    if not m.size:
        return
    arrived = st["cur"][m] == st["tgt"][m]
    done = m[arrived]
    st["res_cost"][done] = _fold_legs(st["legs"][done], 3)
    st["res_target"][done] = st["tgt"][done]
    st["phase"][done] = PH_DONE
    move = m[~arrived]
    if not move.size:
        return
    cur = st["cur"][move]
    tgt = st["tgt"][move]
    home = st["home"][move]
    member, _ = _lookup_sorted(A["CL_KEY"], cur * n + tgt)
    direct = member | (cur == home) | A["IS_LM"][tgt]
    d = move[direct]
    if d.size:
        nxt = A["NH"][cur[direct], tgt[direct]]
        w = _edge_w(A, n, cur[direct], nxt)
        col = np.where(st["via"][d], 2, 0)
        st["legs"][d, col] += w
        st["cur"][d] = nxt
    i = move[~direct]
    if i.size:
        nxt = A["NH"][cur[~direct], home[~direct]]
        w = _edge_w(A, n, cur[~direct], nxt)
        st["legs"][i, 1] += w
        st["via"][i] |= nxt == home[~direct]
        st["cur"][i] = nxt


def _init_labeled_nonsf(T, src, tgt):
    st = _base_state(T, src, PH_WALK)
    st["wlabel"] = T.arrays["LBL"][tgt]
    return st


def _step_labeled_nonsf(T, A, st, ph):
    done = _lns_walk(A, T.n, st, np.nonzero(ph == PH_WALK)[0])
    if done.size:
        # cost is folded once over the whole path (the interpreted loop
        # computes it after the fact); legs is {"walk": cost}.
        st["legs"][done, 0] = st["call"][done]
        st["res_cost"][done] = st["call"][done]
        st["res_target"][done] = st["cur"][done]
        st["phase"][done] = PH_DONE


def _init_nameind_simple(T, src, tgt):
    st = _base_state(T, src, PH_SDESC)
    b = src.size
    st["skey"] = T.arrays["NAMEOF"][tgt]
    st["wlabel"] = np.zeros(b, dtype=np.int64)
    st["role"] = np.zeros(b, dtype=np.int64)
    st["lvl"] = np.zeros(b, dtype=np.int64)
    st["s_slot"] = np.zeros(b, dtype=np.int64)
    st["s_root"] = np.zeros(b, dtype=np.int64)
    st["s_key"] = np.zeros(b, dtype=np.int64)
    st["s_found"] = np.zeros(b, dtype=bool)
    st["s_data"] = np.zeros(b, dtype=np.int64)
    _start_search(
        T.arrays, st, np.arange(b), T.arrays["NS_TREE"][0, src], st["skey"]
    )
    return st


def _ns_deliver(T, A, st, idx: np.ndarray) -> None:
    """Final-walk arrival: misdelivery check, then finish."""
    st["legs"][idx, 2] += st["call"][idx]
    target = st["cur"][idx]
    if (A["NAMEOF"][target] != st["skey"][idx]).any():
        raise EngineError("misdelivery: delivered node has the wrong name")
    st["res_target"][idx] = target
    st["res_cost"][idx] = _fold_legs(st["legs"][idx], 3)
    st["phase"][idx] = PH_DONE


def _step_nameind_simple(T, A, st, ph):
    n = T.n
    top = int(T.scalars["top_level"])
    # Ring walk (zoom or final leg).
    done = _lns_walk(A, n, st, np.nonzero(ph == PH_WALK)[0])
    if done.size:
        zoom = done[st["role"][done] == ROLE_ZOOM]
        if zoom.size:
            st["legs"][zoom, 0] += st["call"][zoom]
            st["lvl"][zoom] += 1
            _start_search(
                A, st, zoom,
                A["NS_TREE"][st["lvl"][zoom], st["cur"][zoom]],
                st["skey"][zoom],
            )
            st["phase"][zoom] = PH_SDESC
        final = done[st["role"][done] == ROLE_FINAL]
        if final.size:
            _ns_deliver(T, A, st, final)
    # Search round trip.
    _search_desc(A, st, np.nonzero(ph == PH_SDESC)[0], PH_SASC)
    done = _search_asc(A, st, np.nonzero(ph == PH_SASC)[0])
    if done.size:
        st["legs"][done, 1] += st["call"][done]
        found = done[st["s_found"][done]]
        if found.size:
            st["role"][found] = ROLE_FINAL
            st["wlabel"][found] = st["s_data"][found]
            st["call"][found] = 0.0
            st["phase"][found] = PH_WALK
        miss = done[~st["s_found"][done]]
        if miss.size:
            if (st["lvl"][miss] >= top).any():
                raise EngineError("name not found at the top level")
            parent = A["PAR"][st["lvl"][miss] + 1, st["cur"][miss]]
            if (parent < 0).any():
                raise EngineError("zoom outside the net hierarchy domain")
            climb = parent != st["cur"][miss]
            z = miss[climb]
            if z.size:
                st["role"][z] = ROLE_ZOOM
                st["wlabel"][z] = A["LBL"][parent[climb]]
                st["call"][z] = 0.0
                st["phase"][z] = PH_WALK
            stay = miss[~climb]
            if stay.size:
                st["lvl"][stay] += 1
                _start_search(
                    A, st, stay,
                    A["NS_TREE"][st["lvl"][stay], st["cur"][stay]],
                    st["skey"][stay],
                )
                st["phase"][stay] = PH_SDESC


# ---------------------- Algorithm 5 sub-machine -----------------------


def _lsf_start_center(T, A, st, idx: np.ndarray) -> None:
    """Enter the Voronoi phase at packing level ``vj``."""
    if not idx.size:
        return
    c = A["VC"][st["vj"][idx], st["cur"][idx]]
    st["vc"][idx] = c
    tid = A["TR_ID"][st["vj"][idx], c]
    if (tid < 0).any():
        raise EngineError("Voronoi center has no tree router")
    ok, pos = _lookup_sorted(A["T_SLOT_KEY"], tid * T.n + st["cur"][idx])
    if not ok.all():
        raise EngineError("packet is outside its Voronoi tree")
    st["tr_slot"][idx] = A["T_SLOT_VAL"][pos]
    st["trt"][idx] = 0  # the center is the DFS root: label 0
    st["call"][idx] = 0.0
    st["phase"][idx] = PH_LCENTER


def _lsf_phases(T, A, st, ph, legs) -> None:
    """Advance every packet inside an Algorithm 5 call by one transition.

    ``legs`` is the 4-column (walk, to_center, search, final) array the
    call accumulates into; callers dispatch on ``PH_LRET`` afterwards.
    """
    n = T.n
    log_n = int(T.scalars["log_n"])
    eps = T.scalars["eps"]
    slack = T.scalars["slack"]
    # Phase 1: greedy ring walk.
    m = np.nonzero(ph == PH_LWALK)[0]
    if m.size:
        arrived = A["LBL"][st["cur"][m]] == st["wlabel"][m]
        st["phase"][m[arrived]] = PH_LRET
        move = m[~arrived]
        if move.size:
            cur = st["cur"][move]
            has, first = _first_cover(
                A["R_LO"][cur], A["R_HI"][cur], st["wlabel"][move]
            )
            lvl = A["R_LVL"][cur, first]
            x = A["R_X"][cur, first]
            dist = A["R_D"][cur, first]
            is_dest = A["R_LO"][cur, first] == A["R_HI"][cur, first]
            threshold = np.ldexp(1.0, lvl - 1) / eps - np.ldexp(1.0, lvl)
            advance = (
                has
                & (x != cur)
                & (
                    is_dest
                    | (
                        (lvl <= st["prev_lvl"][move])
                        & (dist >= threshold - slack)
                    )
                )
            )
            adv = move[advance]
            if adv.size:
                nxt = A["NH"][cur[advance], x[advance]]
                st[legs][adv, 0] += _edge_w(A, n, cur[advance], nxt)
                st["cur"][adv] = nxt
                st["prev_lvl"][adv] = lvl[advance]
            stop = move[~advance]
            if stop.size:
                # Phase 2 entry: the re-scan the interpreter performs
                # sees unchanged state, so this sweep's scan stands in
                # for it; no-hit packets escalate to the global level.
                vj = np.full(stop.size, log_n, dtype=np.int64)
                hashit = has[~advance]
                h = stop[hashit]
                if h.size:
                    power = np.ldexp(1.0, lvl[~advance][hashit])
                    ru = A["RU"][st["cur"][h]]
                    cond = (ru[:, : log_n + 1] <= power[:, None] + slack) & (
                        power[:, None] < ru[:, 1 : log_n + 2]
                    )
                    anyc = cond.any(axis=1)
                    vj[hashit] = np.where(
                        anyc, cond.argmax(axis=1), log_n
                    )
                st["vj"][stop] = vj
                _lsf_start_center(T, A, st, stop)
    # Tree-route to the center.
    done = _tree_move(A, n, st, np.nonzero(ph == PH_LCENTER)[0])
    if done.size:
        st[legs][done, 1] += st["call"][done]
        sid = A["SR_ID"][st["vj"][done], st["vc"][done]]
        # Search tree II is keyed by the *global label* being routed to.
        _start_search(A, st, done, sid, st["wlabel"][done])
        st["phase"][done] = PH_LSDESC
    # Search tree II round trip.
    _search_desc(A, st, np.nonzero(ph == PH_LSDESC)[0], PH_LSASC)
    done = _search_asc(A, st, np.nonzero(ph == PH_LSASC)[0])
    if done.size:
        st[legs][done, 2] += st["call"][done]  # charged on hit and miss
        found = done[st["s_found"][done]]
        if found.size:
            tid = A["TR_ID"][st["vj"][found], st["vc"][found]]
            st["tr_slot"][found] = A["T_ROOT"][tid]
            st["trt"][found] = st["s_data"][found]
            st["call"][found] = 0.0
            st["phase"][found] = PH_LFINAL
        miss = done[~st["s_found"][done]]
        if miss.size:
            st["vj"][miss] += 1
            if (st["vj"][miss] > log_n).any():
                raise EngineError("label not found even at the global level")
            _lsf_start_center(T, A, st, miss)
    # Tree-route center -> destination.
    done = _tree_move(A, n, st, np.nonzero(ph == PH_LFINAL)[0])
    if done.size:
        st[legs][done, 3] += st["call"][done]
        st["phase"][done] = PH_LRET


def _lsf_registers(st, b: int) -> None:
    st["wlabel"] = np.zeros(b, dtype=np.int64)
    st["prev_lvl"] = np.full(b, np.inf, dtype=np.float64)
    st["vj"] = np.zeros(b, dtype=np.int64)
    st["vc"] = np.zeros(b, dtype=np.int64)
    st["tr_slot"] = np.zeros(b, dtype=np.int64)
    st["trt"] = np.zeros(b, dtype=np.int64)
    st["s_slot"] = np.zeros(b, dtype=np.int64)
    st["s_root"] = np.zeros(b, dtype=np.int64)
    st["s_key"] = np.zeros(b, dtype=np.int64)
    st["s_found"] = np.zeros(b, dtype=bool)
    st["s_data"] = np.zeros(b, dtype=np.int64)
    st["skey"] = np.zeros(b, dtype=np.int64)


def _init_labeled_sf(T, src, tgt):
    st = _base_state(T, src, PH_LWALK)
    _lsf_registers(st, src.size)
    st["wlabel"] = T.arrays["LBL"][tgt]
    return st


def _step_labeled_sf(T, A, st, ph):
    _lsf_phases(T, A, st, ph, "legs")
    # Standalone call: return == deliver.
    done = np.nonzero(ph == PH_LRET)[0]
    if done.size:
        st["res_target"][done] = st["cur"][done]
        st["res_cost"][done] = _fold_legs(st["legs"][done], 4)
        st["phase"][done] = PH_DONE


# The search registers (s_slot/s_root/s_key/...) are shared between the
# outer name searches and the inner Algorithm 5 searches: a packet is
# never inside both at once (an outer search completes before any inner
# call starts and vice versa).  ``s_key`` is set at search start — to
# the destination *name* for outer searches, to the walk *label* for
# search tree II — so the two key spaces never mix.


def _init_nameind_sf(T, src, tgt):
    st = _base_state(T, src, PH_NDECIDE)
    b = src.size
    _lsf_registers(st, b)
    st["skey"] = T.arrays["NAMEOF"][tgt]
    st["ilegs"] = np.zeros((b, 4), dtype=np.float64)
    st["lvl"] = np.zeros(b, dtype=np.int64)
    st["cont"] = np.zeros(b, dtype=np.int64)
    st["sctx"] = np.zeros(b, dtype=np.int64)
    st["saved_u"] = np.zeros(b, dtype=np.int64)
    st["hlj"] = np.zeros(b, dtype=np.int64)
    st["hlc"] = np.zeros(b, dtype=np.int64)
    st["fdata"] = np.zeros(b, dtype=np.int64)
    st["ffound"] = np.zeros(b, dtype=bool)
    return st


def _lsf_call(st, idx: np.ndarray, wlabel: np.ndarray, cont: int) -> None:
    """Begin an inner Algorithm 5 route (fresh legs dict semantics)."""
    st["wlabel"][idx] = wlabel
    st["cont"][idx] = cont
    st["prev_lvl"][idx] = np.inf
    st["ilegs"][idx] = 0.0
    st["phase"][idx] = PH_LWALK


def _nsf_climb(T, A, st, idx: np.ndarray) -> None:
    top = int(T.scalars["top_level"])
    if (st["lvl"][idx] >= top).any():
        raise EngineError("name not found at the top level")
    parent = A["PAR"][st["lvl"][idx] + 1, st["cur"][idx]]
    if (parent < 0).any():
        raise EngineError("zoom outside the net hierarchy domain")
    climb = parent != st["cur"][idx]
    z = idx[climb]
    if z.size:
        _lsf_call(st, z, A["LBL"][parent[climb]], C_ZOOM)
    stay = idx[~climb]
    if stay.size:
        st["lvl"][stay] += 1
        st["phase"][stay] = PH_NDECIDE


def _step_nameind_sf(T, A, st, ph):
    # Algorithm 4 entry: own tree or H-link detour.
    m = np.nonzero(ph == PH_NDECIDE)[0]
    if m.size:
        own = A["NSF_OWN"][st["lvl"][m], st["cur"][m]]
        has_own = own >= 0
        o = m[has_own]
        if o.size:
            st["sctx"][o] = 0
            _start_search(A, st, o, own[has_own], st["skey"][o])
            st["phase"][o] = PH_NSDESC
        h = m[~has_own]
        if h.size:
            hlj = A["NSF_HLJ"][st["lvl"][h], st["cur"][h]]
            hlc = A["NSF_HLC"][st["lvl"][h], st["cur"][h]]
            if (hlj < 0).any():
                raise EngineError("net point has neither tree nor H-link")
            st["hlj"][h] = hlj
            st["hlc"][h] = hlc
            st["saved_u"][h] = st["cur"][h]
            st["sctx"][h] = 1
            _lsf_call(st, h, A["LBL"][hlc], C_HOUT)
    # Outer (name) search round trip.
    _search_desc(A, st, np.nonzero(ph == PH_NSDESC)[0], PH_NSASC)
    done = _search_asc(A, st, np.nonzero(ph == PH_NSASC)[0])
    if done.size:
        st["legs"][done, 1] += st["call"][done]
        ctx0 = done[st["sctx"][done] == 0]
        if ctx0.size:
            found = ctx0[st["s_found"][ctx0]]
            if found.size:
                _lsf_call(st, found, st["s_data"][found], C_FINAL)
            miss = ctx0[~st["s_found"][ctx0]]
            if miss.size:
                _nsf_climb(T, A, st, miss)
        ctx1 = done[st["sctx"][done] == 1]
        if ctx1.size:
            # Detour back to u before acting on the packed-tree verdict.
            st["ffound"][ctx1] = st["s_found"][ctx1]
            st["fdata"][ctx1] = st["s_data"][ctx1]
            _lsf_call(st, ctx1, A["LBL"][st["saved_u"][ctx1]], C_HBACK)
    # Inner Algorithm 5 machine.
    _lsf_phases(T, A, st, ph, "ilegs")
    ret = np.nonzero(ph == PH_LRET)[0]
    if ret.size:
        inner = _fold_legs(st["ilegs"][ret], 4)
        cont = st["cont"][ret]
        hout = ret[cont == C_HOUT]
        if hout.size:
            st["legs"][hout, 1] += inner[cont == C_HOUT]
            _start_search(
                A, st, hout,
                A["NSF_PACKED"][st["hlj"][hout], st["hlc"][hout]],
                st["skey"][hout],
            )
            st["phase"][hout] = PH_NSDESC
        hback = ret[cont == C_HBACK]
        if hback.size:
            st["legs"][hback, 1] += inner[cont == C_HBACK]
            found = hback[st["ffound"][hback]]
            if found.size:
                _lsf_call(st, found, st["fdata"][found], C_FINAL)
            miss = hback[~st["ffound"][hback]]
            if miss.size:
                _nsf_climb(T, A, st, miss)
        zoom = ret[cont == C_ZOOM]
        if zoom.size:
            st["legs"][zoom, 0] += inner[cont == C_ZOOM]
            st["lvl"][zoom] += 1
            st["phase"][zoom] = PH_NDECIDE
        final = ret[cont == C_FINAL]
        if final.size:
            st["legs"][final, 2] += inner[cont == C_FINAL]
            target = st["cur"][final]
            if (A["NAMEOF"][target] != st["skey"][final]).any():
                raise EngineError(
                    "misdelivery: delivered node has the wrong name"
                )
            st["res_target"][final] = target
            st["res_cost"][final] = _fold_legs(st["legs"][final], 3)
            st["phase"][final] = PH_DONE


# --------------------------- landmark scheme --------------------------


def _init_landmark(T, src, tgt):
    st = _base_state(T, src, PH_MITER)
    b = src.size
    A = T.arrays
    st["skey"] = A["NAMEOF"][tgt]
    st["tgt"] = np.full(b, -1, dtype=np.int64)
    st["home"] = np.full(b, -1, dtype=np.int64)
    st["shortcut"] = np.ones(b, dtype=bool)
    st["zerohop"] = np.zeros(b, dtype=bool)
    depth = int(T.scalars["tree_depth"]) + 1
    st["dbuf"] = np.zeros((b, depth), dtype=np.int64)
    st["dlen"] = np.zeros(b, dtype=np.int64)
    st["dpos"] = np.zeros(b, dtype=np.int64)
    zero = np.nonzero(A["NAMEOF"][src] == st["skey"])[0]
    if zero.size:
        # Self-delivery: the interpreter returns before legs exist.
        st["zerohop"][zero] = True
        st["res_target"][zero] = src[zero]
        st["res_cost"][zero] = 0.0
        st["phase"][zero] = PH_DONE
    return st


def _lm_done(st, idx: np.ndarray) -> None:
    if not idx.size:
        return
    st["res_target"][idx] = st["tgt"][idx]
    st["res_cost"][idx] = _fold_legs(st["legs"][idx], 4)
    st["phase"][idx] = PH_DONE


def _step_landmark(T, A, st, ph):
    n = T.n
    m = np.nonzero(ph == PH_MITER)[0]
    if m.size:
        cur = st["cur"][m]
        name = st["skey"][m]
        hit, pos = _lookup_sorted(A["VIC_KEY"], cur * n + name)
        hit &= st["shortcut"][m]
        # Phase V: vicinity shortcut.
        a = m[hit]
        if a.size:
            e = pos[hit]
            st["tgt"][a] = A["VIC_TGT"][e]
            st["home"][a] = A["VIC_HOME"][e]
            arrived = st["cur"][a] == st["tgt"][a]
            _lm_done(st, a[arrived])
            move = a[~arrived]
            if move.size:
                hop = A["VIC_HOP"][e[~arrived]]
                st["legs"][move, 0] += _edge_w(A, n, st["cur"][move], hop)
                st["cur"][move] = hop
                arrived2 = hop == st["tgt"][move]
                _lm_done(st, move[arrived2])
                rest = move[~arrived2]
                if rest.size:
                    # Membership re-check at the *post-hop* node, which
                    # may lie outside this partition's slice — use the
                    # global key array when serving a slice.
                    member = A.get("VIC_MEMBER_KEY", A["VIC_KEY"])
                    still, _ = _lookup_sorted(
                        member,
                        st["cur"][rest] * n + st["skey"][rest],
                    )
                    st["shortcut"][rest[~still]] = False
        # Phases A/B: tree walks.
        b = m[~hit]
        if b.size:
            unresolved = st["tgt"][b] < 0
            u = b[unresolved]
            if u.size:
                at_dir = st["cur"][u] == A["DIR_LM"][st["skey"][u]]
                d = u[at_dir]
                if d.size:
                    # Directory resolution is a control transition.
                    st["tgt"][d] = A["DIR_NODE"][st["skey"][d]]
                    st["home"][d] = A["DIR_HOME"][st["skey"][d]]
                walk = u[~at_dir]
                if walk.size:
                    hop = A["PRED"][
                        A["DIR_ROW"][st["skey"][walk]], st["cur"][walk]
                    ]
                    st["legs"][walk, 1] += _edge_w(
                        A, n, st["cur"][walk], hop
                    )
                    st["cur"][walk] = hop
            r = b[~unresolved]
            if r.size:
                arrived = st["cur"][r] == st["tgt"][r]
                _lm_done(st, r[arrived])
                rr = r[~arrived]
                if rr.size:
                    at_home = st["cur"][rr] == st["home"][rr]
                    walk = rr[~at_home]
                    if walk.size:
                        hop = A["PRED"][
                            A["LM_INDEX"][st["home"][walk]],
                            st["cur"][walk],
                        ]
                        st["legs"][walk, 2] += _edge_w(
                            A, n, st["cur"][walk], hop
                        )
                        st["cur"][walk] = hop
                    descend = rr[at_home]
                    if descend.size:
                        # Source-routed suffix: computed once per packet
                        # (bounded by the landmark-tree depth), spent one
                        # hop per sweep like every other phase.
                        pred = A["PRED"]
                        lm_index = A["LM_INDEX"]
                        for i in descend:
                            row = lm_index[st["home"][i]]
                            chain = []
                            v = int(st["tgt"][i])
                            home = int(st["home"][i])
                            while v != home:
                                chain.append(v)
                                v = int(pred[row, v])
                            chain.reverse()
                            st["dlen"][i] = len(chain)
                            st["dbuf"][i, : len(chain)] = chain
                        st["dpos"][descend] = 0
                        st["phase"][descend] = PH_MDESC
    m = np.nonzero(ph == PH_MDESC)[0]
    if m.size:
        nxt = st["dbuf"][m, st["dpos"][m]]
        st["legs"][m, 3] += _edge_w(A, T.n, st["cur"][m], nxt)
        st["cur"][m] = nxt
        st["dpos"][m] += 1
        _lm_done(st, m[st["dpos"][m] == st["dlen"][m]])


_MACHINES = {
    "shortest_path": (_init_shortest_path, _step_shortest_path),
    "cowen": (_init_cowen, _step_cowen),
    "labeled_nonsf": (_init_labeled_nonsf, _step_labeled_nonsf),
    "nameind_simple": (_init_nameind_simple, _step_nameind_simple),
    "labeled_sf": (_init_labeled_sf, _step_labeled_sf),
    "nameind_sf": (_init_nameind_sf, _step_nameind_sf),
    "landmark": (_init_landmark, _step_landmark),
}


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------


class BatchRouter:
    """Route batches of (source, target) node pairs over compiled tables.

    ``metric`` is only needed by :meth:`route` / :meth:`route_batch` to
    fill ``RouteResult.optimal``; the array path never touches it.
    """

    def __init__(self, tables: CompiledTables, metric=None) -> None:
        if tables.kind not in _MACHINES:
            raise EngineError(f"no batch machine for kind {tables.kind!r}")
        self.tables = tables
        self.metric = metric
        self._init, self._step = _MACHINES[tables.kind]

    def route_arrays(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        record_paths: bool = False,
    ) -> Dict[str, object]:
        """Route pairs; outputs are in injection-index order.

        Returns a dict with ``target`` (delivered node), ``cost``,
        ``legs`` (float64 ``[B, len(leg_names)]``, or None for schemes
        whose results carry no legs), ``sweeps``, plus ``paths`` (list
        of node lists) when ``record_paths`` is set and ``zerohop``
        for the landmark kind.
        """
        T = self.tables
        src, tgt = _validate_pairs(T.n, sources, targets)
        A = T.arrays
        st = self._init(T, src, tgt)
        paths = [[int(s)] for s in src] if record_paths else None
        max_sweeps = int(T.scalars["max_sweeps"])
        sweeps = 0
        step = self._step
        phase = st["phase"]
        while True:
            live = phase != PH_DONE
            if not live.any():
                break
            if sweeps >= max_sweeps:
                raise EngineError(
                    f"{int(live.sum())} packets still live after "
                    f"{sweeps} sweeps"
                )
            before = st["cur"].copy() if record_paths else None
            step(T, A, st, phase.copy())
            sweeps += 1
            if record_paths:
                for i in np.nonzero(st["cur"] != before)[0]:
                    paths[i].append(int(st["cur"][i]))
        width = len(T.leg_names)
        out: Dict[str, object] = {
            "target": st["res_target"].copy(),
            "cost": st["res_cost"].copy(),
            "legs": st["legs"][:, :width].copy() if width else None,
            "sweeps": sweeps,
        }
        if "zerohop" in st:
            out["zerohop"] = st["zerohop"].copy()
        if record_paths:
            out["paths"] = paths
        return out

    def route_batch(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        record_paths: bool = True,
    ) -> List[RouteResult]:
        """Materialize one :class:`RouteResult` per pair (injection order)."""
        if self.metric is None:
            raise EngineError(
                "route_batch needs the metric (for RouteResult.optimal); "
                "construct BatchRouter(tables, metric=...)"
            )
        out = self.route_arrays(sources, targets, record_paths=record_paths)
        T = self.tables
        zerohop = out.get("zerohop")
        legs_cols: Optional[np.ndarray] = out["legs"]  # type: ignore
        results: List[RouteResult] = []
        delivered = out["target"]
        costs = out["cost"]
        for i, source in enumerate(sources):
            source = int(source)
            target = int(delivered[i])
            legs: Optional[Dict[str, float]] = None
            if legs_cols is not None and not (
                zerohop is not None and zerohop[i]
            ):
                legs = {
                    name: float(legs_cols[i, k])
                    for k, name in enumerate(T.leg_names)
                }
            results.append(
                RouteResult(
                    source=source,
                    target=target,
                    path=(
                        out["paths"][i]  # type: ignore[index]
                        if record_paths
                        else [source, target]
                        if source != target
                        else [source]
                    ),
                    cost=float(costs[i]),
                    optimal=self.metric.distance(source, target),
                    header_bits=T.header_bits,
                    legs=legs,
                )
            )
        return results

    def route(self, source: int, target: int) -> RouteResult:
        return self.route_batch([source], [target])[0]
