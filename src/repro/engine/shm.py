"""Shared-memory packing for compiled tables and packet registers.

The sharded serving mode (:mod:`repro.engine.shard`) keeps three kinds
of named ``multiprocessing.shared_memory`` segments:

* one **shared segment** holding every array all shards need (search
  trees, landmark predecessor rows, labels, directories) — mapped by
  every worker, one physical copy for the whole service;
* one **slice segment per shard** holding that shard's partition-sliced
  rows and CSR tables (see ``CompiledTables.slice_partition``) — mapped
  only by its owner;
* one **register segment per batch** holding the packet state arrays —
  the driver and every worker map it, so a serving round exchanges only
  index sets, never pickled register dicts.

A segment is described by a :func:`pack` manifest — a tuple of
``(key, offset, shape, dtype-str, is_rows)`` records — which is small
and picklable, so workers can rebuild the exact array dict from the
segment name alone.  Offsets are 64-byte aligned.

Python < 3.13 has no ``track=False``; who tracks a segment depends on
the start method.  Under ``fork`` (this platform) workers inherit the
driver's resource tracker, so an attach's duplicate registration is a
set no-op and the driver's explicit unlink keeps the books straight.
Under spawn-style methods every attaching worker runs its *own*
tracker, which would unlink the segment when that worker exits
(bpo-38119); :func:`attach` unregisters in that case so the creating
driver keeps sole unlink responsibility.
"""

from __future__ import annotations

import multiprocessing

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.engine.compiler import PartitionRows

__all__ = ["Manifest", "pack", "attach", "views"]

#: (array key, byte offset, shape, dtype string, wrap in PartitionRows)
Manifest = Tuple[Tuple[str, int, Tuple[int, ...], str, bool], ...]


def _aligned(offset: int) -> int:
    return (offset + 63) & ~63


def pack(
    arrays: Dict[str, object],
) -> Tuple[shared_memory.SharedMemory, Manifest]:
    """Copy ``arrays`` (ndarrays or :class:`PartitionRows`) into a new
    named segment; returns the segment and its manifest.

    The caller owns the segment: close + unlink when done.
    """
    records = []
    offset = 0
    datas = []
    for key, arr in arrays.items():
        is_rows = isinstance(arr, PartitionRows)
        data = np.ascontiguousarray(arr.data if is_rows else arr)
        records.append(
            (key, offset, data.shape, data.dtype.str, is_rows)
        )
        datas.append(data)
        offset = _aligned(offset + data.nbytes)
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    for (key, off, shape, dtype, _), data in zip(records, datas):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = data
        del view
    return shm, tuple(records)


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking unlink ownership."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        if multiprocessing.get_start_method() != "fork":
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies
        pass
    return shm


def views(
    shm: shared_memory.SharedMemory,
    manifest: Manifest,
    shards: Optional[int] = None,
) -> Dict[str, object]:
    """Array views over a segment, rebuilt from its manifest.

    ``is_rows`` entries are wrapped back into :class:`PartitionRows`
    (``shards`` is required when the manifest contains any).  The views
    reference the segment's buffer; drop them before closing it.
    """
    out: Dict[str, object] = {}
    for key, offset, shape, dtype, is_rows in manifest:
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        if is_rows:
            if shards is None:
                raise ValueError(
                    "manifest contains sliced rows; pass shards"
                )
            out[key] = PartitionRows(arr, shards)
        else:
            out[key] = arr
    return out
