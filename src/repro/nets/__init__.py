"""r-nets, the nested net hierarchy, zooming sequences, netting tree."""

from repro.nets.hierarchy import NetHierarchy
from repro.nets.rnet import greedy_rnet, is_rnet

__all__ = ["NetHierarchy", "greedy_rnet", "is_rnet"]
