"""The nested 2^i-net hierarchy, zooming sequences, and netting tree.

This implements paper §2 verbatim:

* ``Y_{log Δ}`` is a singleton (we pick node 0 — the paper allows any
  node), and each ``Y_i`` is obtained by greedily expanding ``Y_{i+1}``
  into a ``2^i``-net, so ``Y_{log Δ} ⊆ ... ⊆ Y_1 ⊆ Y_0 = V`` (Eqn. 1).
* The *zooming sequence* of ``u`` is ``u(0) = u`` and ``u(i)`` = the
  nearest node of ``Y_i`` to ``u(i-1)`` (least-id tie-breaking), so
  ``Σ_k d(u(k-1), u(k)) < 2^{i+1}`` (Eqn. 2).
* The *netting tree* ``T({Y_i})`` joins every node's zooming sequence; its
  leaves are ``Y_0 = V``.  Following §4.1, the labeled schemes use the DFS
  leaf enumeration ``l(v)`` of this tree and the contiguous subtree ranges
  ``Range(x, i)``, which satisfy ``l(u) ∈ Range(x, i)  iff  x = u(i)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.types import NodeId, PreprocessingError
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric
from repro.nets.rnet import greedy_rnet


class NetHierarchy:
    """Nested ``2^i``-nets with zooming sequences and DFS labels.

    Args:
        metric: Connected graph metric with min distance normalized to 1.
        root: Optional choice for the single member of the top net
            ``Y_{log Δ}`` (defaults to node 0).
    """

    def __init__(self, metric: GraphMetric, root: Optional[NodeId] = None) -> None:
        self._metric = metric
        self._root = 0 if root is None else root
        if not 0 <= self._root < metric.n:
            raise PreprocessingError(f"root {self._root} out of range")
        # For diameter-1 metrics (e.g. unit cliques) log Δ = 0 but the
        # top net must still be the singleton {root} while Y_0 = V, so
        # the hierarchy needs at least two levels whenever n > 1.
        self._top = max(metric.log_diameter, 1 if metric.n > 1 else 0)
        self._nets: List[List[NodeId]] = self._build_nets()
        self._net_sets = [set(net) for net in self._nets]
        # _parent[i][x] for x in Y_{i-1}: nearest node of Y_i (ties by id).
        self._parent: List[Dict[NodeId, NodeId]] = self._build_parents()
        self._labels, self._ranges = self._build_netting_tree()
        #: Partition accounting for BuildStats.fold: {kind: (reused,
        #: built)}.  A cold build constructs every partition.
        self.build_report: Dict[str, Tuple[int, int]] = {
            "hierarchy_level": (0, self._top),
            "zoom_parent": (
                0,
                sum(len(self._nets[i - 1]) for i in range(1, self._top + 1)),
            ),
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_nets(self) -> List[List[NodeId]]:
        nets: List[List[NodeId]] = [[] for _ in range(self._top + 1)]
        nets[self._top] = [self._root]
        for i in range(self._top - 1, -1, -1):
            nets[i] = greedy_rnet(
                self._metric, float(2**i), seed=nets[i + 1]
            )
        if len(nets[0]) != self._metric.n:
            raise PreprocessingError(
                "Y_0 != V: minimum distance below 1 — was the metric "
                "normalized?"
            )
        return nets

    def _build_parents(self) -> List[Dict[NodeId, NodeId]]:
        parents: List[Dict[NodeId, NodeId]] = [dict()]
        for i in range(1, self._top + 1):
            level_parent: Dict[NodeId, NodeId] = {}
            for x in self._nets[i - 1]:
                # Y_i covers V at radius 2^i, so the nearest net point
                # lies within 2^i of x — a tight first search limit.
                level_parent[x] = self._metric.nearest_among(
                    x, self._nets[i], tol=DISTANCE_SLACK, hint=float(2**i)
                )
            parents.append(level_parent)
        return parents

    def _build_netting_tree(
        self,
    ) -> Tuple[Dict[NodeId, int], List[Dict[NodeId, Tuple[int, int]]]]:
        """DFS the netting tree; return leaf labels and subtree ranges."""
        # children[i][y] = sorted list of x in Y_{i-1} with parent(x, i)=y.
        children: List[Dict[NodeId, List[NodeId]]] = [dict()]
        for i in range(1, self._top + 1):
            level_children: Dict[NodeId, List[NodeId]] = {}
            for x, y in self._parent[i].items():
                level_children.setdefault(y, []).append(x)
            for y in level_children:
                level_children[y].sort()
            children.append(level_children)

        labels: Dict[NodeId, int] = {}
        ranges: List[Dict[NodeId, Tuple[int, int]]] = [
            dict() for _ in range(self._top + 1)
        ]
        next_label = 0
        # Iterative DFS over (node, level) pairs; post-processing pass
        # records ranges once a subtree is fully explored.
        stack: List[Tuple[NodeId, int, bool]] = [(self._root, self._top, False)]
        lows: Dict[Tuple[NodeId, int], int] = {}
        while stack:
            x, i, done = stack.pop()
            if done:
                ranges[i][x] = (lows[(x, i)], next_label - 1)
                continue
            lows[(x, i)] = next_label
            if i == 0:
                labels[x] = next_label
                next_label += 1
                ranges[0][x] = (labels[x], labels[x])
                continue
            stack.append((x, i, True))
            for child in reversed(children[i].get(x, [])):
                stack.append((child, i - 1, False))
        if next_label != self._metric.n:
            raise PreprocessingError(
                f"netting tree has {next_label} leaves, expected "
                f"{self._metric.n}"
            )
        return labels, ranges

    # ------------------------------------------------------------------
    # Incremental rebuild (churn pipeline)
    # ------------------------------------------------------------------

    def level_dependencies(self, i: int) -> FrozenSet[NodeId]:
        """Nodes whose metric rows level ``i``'s net was derived from.

        Greedy net construction reads only the distance rows of the
        accumulated members (the ``mindist`` array in ``greedy_rnet`` is
        a running minimum over member rows), so a net level replays
        identically whenever those rows are clean and the seed level is
        unchanged.
        """
        return frozenset(self._nets[i])

    @classmethod
    def rebuilt(
        cls,
        metric: GraphMetric,
        previous: "NetHierarchy",
        dirty: FrozenSet[NodeId],
        root: Optional[NodeId] = None,
    ) -> "NetHierarchy":
        """Rebuild ``previous`` against an edited metric, level by level.

        ``dirty`` is the set of nodes whose distance rows may differ
        between ``previous.metric`` and ``metric``.  A net level is
        reused when its seed is unchanged and none of its members is
        dirty (see :meth:`level_dependencies`); zooming parents are
        recomputed only for dirty nodes or changed nets.  If every net
        and every parent comes out equal, ``previous`` itself is
        returned, rebased onto the new metric — the promotion that lets
        downstream schemes skip their own rebuilds.
        """
        root = 0 if root is None else root
        top = max(metric.log_diameter, 1 if metric.n > 1 else 0)
        if (
            metric.n != previous._metric.n
            or top != previous._top
            or root != previous._root
        ):
            return cls(metric, root=root)

        nets: List[List[NodeId]] = [[] for _ in range(top + 1)]
        nets[top] = [root]
        levels_reused = levels_built = 0
        for i in range(top - 1, -1, -1):
            seed_same = nets[i + 1] == previous._nets[i + 1]
            # Y_0 = V holds for any normalized metric independent of the
            # distance rows, so level 0 only needs its seed unchanged.
            members_clean = i == 0 or not (dirty & previous._net_sets[i])
            if seed_same and members_clean:
                nets[i] = previous._nets[i]
                levels_reused += 1
            else:
                nets[i] = greedy_rnet(metric, float(2**i), seed=nets[i + 1])
                levels_built += 1
        if len(nets[0]) != metric.n:
            raise PreprocessingError(
                "Y_0 != V: minimum distance below 1 — was the metric "
                "normalized?"
            )

        nets_same = [nets[i] == previous._nets[i] for i in range(top + 1)]
        parents: List[Dict[NodeId, NodeId]] = [dict()]
        parents_reused = parents_built = 0
        for i in range(1, top + 1):
            level_parent: Dict[NodeId, NodeId] = {}
            reusable_level = nets_same[i] and nets_same[i - 1]
            for x in nets[i - 1]:
                if reusable_level and x not in dirty:
                    level_parent[x] = previous._parent[i][x]
                    parents_reused += 1
                else:
                    level_parent[x] = metric.nearest_among(
                        x, nets[i], tol=DISTANCE_SLACK, hint=float(2**i)
                    )
                    parents_built += 1
            parents.append(level_parent)

        report = {
            "hierarchy_level": (levels_reused, levels_built),
            "zoom_parent": (parents_reused, parents_built),
        }
        if all(nets_same) and parents == previous._parent:
            # Bit-identical structure: promote the stashed hierarchy,
            # rebased so its readers see post-edit distances.
            previous._metric = metric
            previous.build_report = report
            return previous

        fresh = object.__new__(cls)
        fresh._metric = metric
        fresh._root = root
        fresh._top = top
        fresh._nets = [
            previous._nets[i] if nets[i] == previous._nets[i] else nets[i]
            for i in range(top + 1)
        ]
        fresh._net_sets = [
            previous._net_sets[i]
            if fresh._nets[i] is previous._nets[i]
            else set(fresh._nets[i])
            for i in range(top + 1)
        ]
        fresh._parent = parents
        fresh._labels, fresh._ranges = fresh._build_netting_tree()
        fresh.build_report = report
        return fresh

    # ------------------------------------------------------------------
    # Net access
    # ------------------------------------------------------------------

    @property
    def metric(self) -> GraphMetric:
        return self._metric

    @property
    def top_level(self) -> int:
        """Index of the highest level ``log Δ`` (singleton net)."""
        return self._top

    @property
    def levels(self) -> range:
        """All level indices ``0 .. log Δ``."""
        return range(self._top + 1)

    def net(self, i: int) -> List[NodeId]:
        """``Y_i``, sorted by node id."""
        return self._nets[i]

    def in_net(self, x: NodeId, i: int) -> bool:
        """Whether ``x ∈ Y_i``."""
        return x in self._net_sets[i]

    def highest_level_of(self, x: NodeId) -> int:
        """Largest ``i`` with ``x ∈ Y_i`` (0 for non-net nodes)."""
        lo, hi = 0, self._top
        # Nets are nested, so membership is monotone in the level.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if x in self._net_sets[mid]:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # ------------------------------------------------------------------
    # Zooming sequences (paper Eqn. 2)
    # ------------------------------------------------------------------

    def parent(self, x: NodeId, i: int) -> NodeId:
        """``x``'s netting-tree parent: nearest node of ``Y_i`` to x.

        Requires ``x ∈ Y_{i-1}`` and ``1 <= i <= top_level``.
        """
        if not 1 <= i <= self._top:
            raise ValueError(f"level {i} out of range [1, {self._top}]")
        return self._parent[i][x]

    def zoom(self, u: NodeId, i: int) -> NodeId:
        """``u(i)``: the i-th element of u's zooming sequence."""
        x = u
        for k in range(1, i + 1):
            x = self._parent[k][x]
        return x

    def zooming_sequence(self, u: NodeId) -> List[NodeId]:
        """``⟨u(0), ..., u(log Δ)⟩``."""
        seq = [u]
        for k in range(1, self._top + 1):
            seq.append(self._parent[k][seq[-1]])
        return seq

    # ------------------------------------------------------------------
    # Netting-tree labels (paper §4.1)
    # ------------------------------------------------------------------

    def label(self, v: NodeId) -> int:
        """``l(v)``: DFS leaf index of ``v`` in the netting tree."""
        return self._labels[v]

    def node_with_label(self, label: int) -> NodeId:
        """Inverse of :meth:`label` (linear scan; test helper)."""
        for v, l in self._labels.items():
            if l == label:
                return v
        raise KeyError(label)

    def range_of(self, x: NodeId, i: int) -> Tuple[int, int]:
        """``Range(x, i)``: leaf-label interval of x's level-i subtree."""
        return self._ranges[i][x]

    def label_in_range(self, label: int, x: NodeId, i: int) -> bool:
        """Whether ``label ∈ Range(x, i)``."""
        lo, hi = self._ranges[i][x]
        return lo <= label <= hi

    # ------------------------------------------------------------------
    # Rings (paper §4.1): X_i(u) = B_u(2^i / ε) ∩ Y_i
    # ------------------------------------------------------------------

    def ring(self, u: NodeId, i: int, epsilon: float) -> List[NodeId]:
        """``X_i(u)``: net points of ``Y_i`` within ``2^i/ε`` of u."""
        radius = (2.0**i) / epsilon
        members = self._metric.ball_set(u, radius)
        return [x for x in self._nets[i] if x in members]

    def zoom_cost_bound(self, i: int) -> float:
        """Paper Eqn. (2) bound: ``Σ_{k<=i} d(u(k-1),u(k)) < 2^{i+1}``."""
        return float(2 ** (i + 1))

    def __repr__(self) -> str:
        sizes = [len(net) for net in self._nets]
        return f"NetHierarchy(top={self._top}, net_sizes={sizes})"
