"""Greedy r-net construction (paper Definition 2.1).

An ``r``-net of a metric space ``(V, d)`` is a subset ``Y ⊆ V`` such that

1. (covering) every point of ``V`` is within distance ``r`` of ``Y``, and
2. (packing) any two points of ``Y`` are at distance at least ``r``.

The paper constructs nets greedily, optionally *expanding* an existing
coarser net (its §2 top-down hierarchy construction: "recursively
construct the 2^i-net Y_i by greedily expanding Y_{i+1}").  We scan
candidates in increasing node-id order, which makes every net — and hence
every downstream structure — deterministic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.types import NodeId
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric


def greedy_rnet(
    metric: GraphMetric,
    r: float,
    seed: Optional[Sequence[NodeId]] = None,
    universe: Optional[Sequence[NodeId]] = None,
) -> List[NodeId]:
    """Greedily construct an ``r``-net, optionally expanding ``seed``.

    Args:
        metric: The ambient metric.
        r: Net radius (must be positive).
        seed: Points that must belong to the net.  They must themselves be
            pairwise at distance >= r (as when expanding a ``2r``-net);
            this is asserted in debug runs but not re-checked here.
        universe: The point set to cover; defaults to all nodes.  The net
            returned consists of ``seed`` plus points drawn from
            ``universe`` in increasing id order.

    Returns:
        Sorted list of net points covering ``universe``.
    """
    if r <= 0:
        raise ValueError(f"net radius must be positive, got {r}")
    if universe is None:
        universe = list(metric.nodes)
    members: List[NodeId] = sorted(seed) if seed else []

    # mindist[v] = distance from v to the current net.  Only distances
    # below ~r ever matter to the accept test, so each member charges a
    # radius-r ball instead of a full row: nodes beyond the ball keep
    # mindist = inf (>= r - slack), and nodes inside get the exact same
    # distance the full row would supply — decision-identical, but
    # bounded work on the lazy substrate.
    mindist = np.full(metric.n, np.inf)
    for p in members:
        ids, d = metric.ball_with_distances(p, r)
        mindist[ids] = np.minimum(mindist[ids], d)

    for v in sorted(universe):
        if mindist[v] >= r - DISTANCE_SLACK:
            members.append(v)
            ids, d = metric.ball_with_distances(v, r)
            mindist[ids] = np.minimum(mindist[ids], d)
    return sorted(set(members))


def is_rnet(
    metric: GraphMetric,
    r: float,
    net: Sequence[NodeId],
    universe: Optional[Iterable[NodeId]] = None,
) -> bool:
    """Check both r-net properties (covering and packing) exactly."""
    if not net:
        return False
    if universe is None:
        universe = metric.nodes
    net = list(net)
    net_set = set(net)
    # Packing: pairwise distances >= r.  A violating pair is closer
    # than r, so it shows up inside a radius-r ball — no full rows.
    for u in net:
        ids, d = metric.ball_with_distances(u, r)
        for x, dist in zip(ids, d):
            if x != u and int(x) in net_set and dist < r - DISTANCE_SLACK:
                return False
    # Covering: every universe point within r of the net.
    mindist = np.full(metric.n, np.inf)
    for p in net:
        ids, d = metric.ball_with_distances(p, r)
        mindist[ids] = np.minimum(mindist[ids], d)
    return all(mindist[v] <= r + DISTANCE_SLACK for v in universe)
