"""Tree-routing substrate (Lemma 4.1) and Voronoi shortest-path trees."""

from repro.trees.heavy_path import HeavyPathRouter
from repro.trees.spt import ShortestPathTree, voronoi_partition
from repro.trees.tree_router import TreeRouter

__all__ = [
    "HeavyPathRouter",
    "ShortestPathTree",
    "TreeRouter",
    "voronoi_partition",
]
