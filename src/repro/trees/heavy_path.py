"""Heavy-path tree routing — the Fraigniaud–Gavoille flavor of Lemma 4.1.

The DFS-interval router (:class:`~repro.trees.tree_router.TreeRouter`)
stores one interval per child, i.e. ``O(deg(v) log n)`` bits at a node.
The schemes of [14, 29] cited in Lemma 4.1 avoid the degree factor by
moving the child-selection information *into the label*.  This module
implements that idea with a heavy-path decomposition:

* Every non-leaf node has one **heavy** child (largest subtree, ties by
  least id); maximal heavy chains form **heavy paths**.  A root-to-node
  path descends through at most ``⌊log₂ n⌋`` light edges.
* ``label(v)`` is the descent program: for each traversed heavy path,
  how many steps to walk down it and which light child to exit into,
  ending with the number of steps on v's own path.  At most ``log n``
  entries of ``O(log n)`` bits each.
* A node stores only its own label, its index on its heavy path, its
  heavy child, and its parent — ``O(log² n)`` bits regardless of degree.
  Routing compares the target label with the local label: follow the
  common prefix, descend (heavy child or the named light child), or
  climb to the parent.

Routing is always along the unique tree path, hence optimal, like the
interval router; the two are interchangeable substrates for the
Theorem 1.2 scheme (see the ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitcount import bits_for_count, bits_for_id
from repro.core.types import NodeId, RouteFailure
from repro.trees.spt import ShortestPathTree

#: One label entry: (steps down the current heavy path, light child to
#: exit into).  The final entry uses ``exit_child = -1`` ("stop here").
LabelEntry = Tuple[int, int]


class HeavyPathRouter:
    """Labeled tree routing with degree-independent node storage."""

    def __init__(self, tree: ShortestPathTree) -> None:
        self._tree = tree
        self._subtree_size: Dict[NodeId, int] = {}
        self._heavy_child: Dict[NodeId, Optional[NodeId]] = {}
        self._path_index: Dict[NodeId, int] = {}
        self._labels: Dict[NodeId, Tuple[LabelEntry, ...]] = {}
        self._compute_sizes()
        self._compute_paths_and_labels()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _compute_sizes(self) -> None:
        order: List[NodeId] = []
        stack = [self._tree.root]
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(self._tree.children_of(v))
        for v in reversed(order):
            kids = self._tree.children_of(v)
            self._subtree_size[v] = 1 + sum(
                self._subtree_size[c] for c in kids
            )
            if kids:
                self._heavy_child[v] = max(
                    kids, key=lambda c: (self._subtree_size[c], -c)
                )
            else:
                self._heavy_child[v] = None

    def _compute_paths_and_labels(self) -> None:
        # Walk from the root; carry (prefix, steps-on-current-path).
        root = self._tree.root
        stack: List[Tuple[NodeId, Tuple[LabelEntry, ...], int]] = [
            (root, (), 0)
        ]
        while stack:
            v, prefix, steps = stack.pop()
            self._path_index[v] = steps
            self._labels[v] = prefix + ((steps, -1),)
            heavy = self._heavy_child[v]
            for child in self._tree.children_of(v):
                if child == heavy:
                    stack.append((child, prefix, steps + 1))
                else:
                    stack.append(
                        (child, prefix + ((steps, child),), 0)
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def tree(self) -> ShortestPathTree:
        return self._tree

    @property
    def size(self) -> int:
        return len(self._labels)

    def label(self, v: NodeId) -> Tuple[LabelEntry, ...]:
        if v not in self._labels:
            raise KeyError(f"{v} is not in this tree")
        return self._labels[v]

    def node_with_label(self, label: Sequence[LabelEntry]) -> NodeId:
        """Inverse lookup (test helper; linear)."""
        wanted = tuple(label)
        for v, lab in self._labels.items():
            if lab == wanted:
                return v
        raise KeyError(label)

    def label_bits(self, v: Optional[NodeId] = None) -> int:
        """Measured label size: entries x (depth + child id) bits.

        With no argument, returns the tree-wide maximum (the interface
        shared with :class:`~repro.trees.tree_router.TreeRouter`).
        """
        if v is None:
            return self.max_label_bits()
        depth_bits = bits_for_count(self.size)
        id_bits = bits_for_id(self._tree.metric.n)
        return len(self._labels[v]) * (depth_bits + id_bits)

    def max_label_bits(self) -> int:
        return max(self.label_bits(v) for v in self._labels)

    def light_depth(self, v: NodeId) -> int:
        """Number of light edges on the root-to-v path (≤ log2 n)."""
        return len(self._labels[v]) - 1

    def storage_bits(self, v: NodeId) -> int:
        """Own label + parent id + heavy-child id + path index.

        Crucially degree-independent, unlike the interval router.
        """
        id_bits = bits_for_id(self._tree.metric.n)
        depth_bits = bits_for_count(self.size)
        return self.label_bits(v) + 2 * id_bits + depth_bits

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def next_hop(self, v: NodeId, target: Sequence[LabelEntry]) -> NodeId:
        """One step from ``v`` toward the node labelled ``target``.

        Uses only v's local state (its label, path index, heavy child,
        parent) plus the header.
        """
        target = tuple(target)
        own = self._labels[v]
        if own == target:
            return v
        # Shared descent prefix: all full (steps, light-child) hops that
        # match, i.e. the longest common proper prefix.
        common = 0
        while (
            common < len(own) - 1
            and common < len(target) - 1
            and own[common] == target[common]
        ):
            common += 1
        on_target_branch = own[:common] == target[:common] and (
            len(own) - 1 == common
        )
        if on_target_branch:
            steps, exit_child = target[common]
            index = self._path_index[v]
            if index < steps:
                heavy = self._heavy_child[v]
                if heavy is None:  # pragma: no cover - label mismatch
                    raise RouteFailure(f"label walks past leaf {v}")
                return heavy
            if index == steps:
                if exit_child == -1:
                    return v  # own == target handled above; defensive
                return exit_child
        # Wrong branch or overshoot: climb.
        if v == self._tree.root:  # pragma: no cover - defensive
            raise RouteFailure("root cannot climb; malformed label")
        return self._tree.parent_of(v)

    def route(
        self, source: NodeId, target: Sequence[LabelEntry]
    ) -> List[NodeId]:
        if source not in self._labels:
            raise RouteFailure(f"source {source} not in tree")
        path = [source]
        guard = 2 * self.size + 2
        target = tuple(target)
        while self._labels[path[-1]] != target:
            path.append(self.next_hop(path[-1], target))
            if len(path) > guard:  # pragma: no cover - defensive
                raise RouteFailure("heavy-path routing failed to converge")
        return path

    def route_cost(
        self, source: NodeId, target: Sequence[LabelEntry]
    ) -> float:
        path = self.route(source, target)
        metric = self._tree.metric
        return sum(
            metric.edge_weight(a, b) for a, b in zip(path, path[1:])
        )

    def verify_optimal(self) -> bool:
        """Route cost equals tree distance for all pairs (small trees)."""
        for u in self._labels:
            for v in self._labels:
                cost = self.route_cost(u, self._labels[v])
                want = self._tree.tree_distance(u, v)
                if abs(cost - want) > 1e-9 * (1.0 + want):
                    return False
        return True

    def __repr__(self) -> str:
        return f"HeavyPathRouter(root={self._tree.root}, size={self.size})"
