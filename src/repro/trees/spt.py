"""Voronoi partitions and shortest-path trees (paper §4.1).

For each packing level ``j`` the scale-free labeled scheme partitions the
network into the Voronoi regions ``V(c, j)`` of the packing centers and
routes inside each region on a shortest-path tree ``T_c(j)`` rooted at the
center.  We build ``T_c(j)`` from the *canonical* shortest paths of
:class:`~repro.metric.graph_metric.GraphMetric` (least-id next hops), so
the union of the paths from the region's members to ``c`` is always a
tree.  With exact distance ties a canonical path may pass through a node
of a neighbouring region; such pass-through nodes are simply included in
the tree (and charged for its storage) — see DESIGN.md's faithfulness
notes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.core.types import NodeId
from repro.metric.graph_metric import DISTANCE_SLACK, GraphMetric


def voronoi_partition(
    metric: GraphMetric, centers: Sequence[NodeId]
) -> Dict[NodeId, List[NodeId]]:
    """Partition all nodes by nearest center (least-id tie-breaking).

    Returns a map from each center to the sorted list of nodes assigned
    to it; every node (including the centers) appears exactly once.
    """
    if not centers:
        raise ValueError("need at least one center")
    cells: Dict[NodeId, List[NodeId]] = {c: [] for c in centers}
    ordered = sorted(centers)
    for v in metric.nodes:
        best = min(ordered, key=lambda c: (metric.distance(v, c), c))
        cells[best].append(v)
    return cells


class ShortestPathTree:
    """Union of canonical shortest paths from ``members`` to ``root``.

    Attributes:
        root: The tree root (a packing center in the paper's use).
        members: The nodes the tree is required to span.
        nodes: All tree nodes — members plus any pass-through nodes on
            their canonical paths to the root.
    """

    def __init__(
        self,
        metric: GraphMetric,
        root: NodeId,
        members: Sequence[NodeId],
    ) -> None:
        self._metric = metric
        self.root = root
        self.members = sorted(set(members) | {root})
        parent: Dict[NodeId, NodeId] = {}
        nodes: Set[NodeId] = {root}
        for v in self.members:
            current = v
            while current != root and current not in parent:
                hop = metric.next_hop(current, root)
                parent[current] = hop
                nodes.add(current)
                current = hop
            nodes.add(current)
        self._parent = parent
        self.nodes = sorted(nodes)
        self._children: Dict[NodeId, List[NodeId]] = {v: [] for v in nodes}
        for child, par in parent.items():
            self._children[par].append(child)
        for v in self._children:
            self._children[v].sort()

    @property
    def metric(self) -> GraphMetric:
        return self._metric

    def parent_of(self, v: NodeId) -> NodeId:
        """Tree parent (the root raises ``KeyError``)."""
        return self._parent[v]

    def children_of(self, v: NodeId) -> List[NodeId]:
        return list(self._children[v])

    def contains(self, v: NodeId) -> bool:
        return v in self._children

    def tree_distance(self, u: NodeId, v: NodeId) -> float:
        """Distance along the unique tree path between u and v."""
        path = self.tree_path(u, v)
        return sum(
            self._metric.edge_weight(a, b) for a, b in zip(path, path[1:])
        )

    def tree_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """The unique tree path from ``u`` to ``v``."""
        up_u = self._path_to_root(u)
        up_v = self._path_to_root(v)
        index_u = {node: k for k, node in enumerate(up_u)}
        meet = next(node for node in up_v if node in index_u)
        head = up_u[: index_u[meet] + 1]
        tail = up_v[: up_v.index(meet)]
        return head + list(reversed(tail))

    def _path_to_root(self, v: NodeId) -> List[NodeId]:
        path = [v]
        while path[-1] != self.root:
            path.append(self._parent[path[-1]])
        return path

    def depth(self, v: NodeId) -> float:
        """Distance from ``v`` up to the root along tree edges."""
        path = self._path_to_root(v)
        return sum(
            self._metric.edge_weight(a, b) for a, b in zip(path, path[1:])
        )

    def verify_shortest(self) -> bool:
        """Check every node's tree depth equals its metric distance."""
        return all(
            abs(self.depth(v) - self._metric.distance(v, self.root))
            <= DISTANCE_SLACK * (1.0 + self._metric.distance(v, self.root))
            for v in self.nodes
        )

    def __repr__(self) -> str:
        return f"ShortestPathTree(root={self.root}, nodes={len(self.nodes)})"
