"""Compact routing on trees — the substrate behind paper Lemma 4.1.

The paper invokes the tree-routing schemes of Fraigniaud–Gavoille and
Thorup–Zwick ([14, 29]): optimal routing on a weighted tree with
``O(log²n / log log n)``-bit labels, headers, and per-node storage.  We
implement the classic DFS-interval scheme those results refine:

* every tree node gets a label = its DFS entry time ``tin`` (``⌈log m⌉``
  bits for an ``m``-node tree);
* every node stores its own ``[tin, tout]`` interval, its parent edge,
  and one ``(child, [tin, tout])`` entry per child;
* a packet for label ``t`` descends into the child whose interval
  contains ``t`` and otherwise climbs to the parent — always along the
  unique (hence optimal) tree path.

Storage is ``O((deg(v)+1) log m)`` bits per node instead of the
``O(log²m/log log m)`` worst case of [14, 29]; on the bounded-degree
networks evaluated here this is at most the cited bound.  The routing
behaviour (optimal tree paths) is identical, so stretch results are
unaffected.  See DESIGN.md, faithfulness notes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.bitcount import bits_for_id
from repro.core.types import NodeId, RouteFailure
from repro.trees.spt import ShortestPathTree


class TreeRouter:
    """Labeled routing over a :class:`ShortestPathTree`.

    Labels are DFS entry times (children visited in ascending node-id
    order), so they are integers in ``[0, m)`` for an ``m``-node tree.
    """

    def __init__(self, tree: ShortestPathTree) -> None:
        self._tree = tree
        self._tin: Dict[NodeId, int] = {}
        self._tout: Dict[NodeId, int] = {}
        self._by_tin: Dict[int, NodeId] = {}
        self._dfs_number()

    def _dfs_number(self) -> None:
        counter = 0
        stack: List[Tuple[NodeId, bool]] = [(self._tree.root, False)]
        while stack:
            v, done = stack.pop()
            if done:
                self._tout[v] = counter - 1
                continue
            self._tin[v] = counter
            self._by_tin[counter] = v
            counter += 1
            stack.append((v, True))
            for child in reversed(self._tree.children_of(v)):
                stack.append((child, False))

    # ------------------------------------------------------------------

    @property
    def tree(self) -> ShortestPathTree:
        return self._tree

    @property
    def size(self) -> int:
        return len(self._tin)

    def label(self, v: NodeId) -> int:
        """The local routing label ``l(v; tree)`` — v's DFS entry time."""
        if v not in self._tin:
            raise KeyError(f"{v} is not in this tree")
        return self._tin[v]

    def node_with_label(self, label: int) -> NodeId:
        return self._by_tin[label]

    def label_bits(self) -> int:
        """Bits per label: ``⌈log m⌉`` for this m-node tree."""
        return bits_for_id(self.size)

    def next_hop(self, v: NodeId, target_label: int) -> NodeId:
        """One routing step from ``v`` toward the node labelled target.

        Uses only v's local state: its interval, its parent, and its
        children's intervals.
        """
        if not 0 <= target_label < self.size:
            raise RouteFailure(
                f"label {target_label} outside tree of size {self.size}"
            )
        if self._tin[v] == target_label:
            return v
        if self._tin[v] < target_label <= self._tout[v]:
            for child in self._tree.children_of(v):
                if self._tin[child] <= target_label <= self._tout[child]:
                    return child
            raise RouteFailure(  # pragma: no cover - intervals partition
                f"no child of {v} covers label {target_label}"
            )
        return self._tree.parent_of(v)

    def route(self, source: NodeId, target_label: int) -> List[NodeId]:
        """Full hop-by-hop path from ``source`` to the labelled node."""
        if source not in self._tin:
            raise RouteFailure(f"source {source} not in tree")
        path = [source]
        guard = 2 * self.size + 2
        while self._tin[path[-1]] != target_label:
            path.append(self.next_hop(path[-1], target_label))
            if len(path) > guard:  # pragma: no cover - defensive
                raise RouteFailure("tree routing failed to converge")
        return path

    def route_cost(self, source: NodeId, target_label: int) -> float:
        path = self.route(source, target_label)
        metric = self._tree.metric
        return sum(
            metric.edge_weight(a, b) for a, b in zip(path, path[1:])
        )

    # ------------------------------------------------------------------

    def storage_bits(self, v: NodeId) -> int:
        """Bits node ``v`` keeps for this tree's routing.

        Own interval (2 labels), parent id (if any), and per child its id
        plus interval (3 labels each).
        """
        if v not in self._tin:
            raise KeyError(f"{v} is not in this tree")
        unit = self.label_bits()
        children = len(self._tree.children_of(v))
        parent = 0 if v == self._tree.root else 1
        node_id_bits = bits_for_id(self._tree.metric.n)
        return 2 * unit + parent * node_id_bits + children * (
            node_id_bits + 2 * unit
        )

    def verify_optimal(self) -> bool:
        """Routing cost equals the tree-path distance for all pairs.

        Quadratic; intended for tests on small trees.
        """
        for u in self._tin:
            for v in self._tin:
                cost = self.route_cost(u, self._tin[v])
                want = self._tree.tree_distance(u, v)
                if abs(cost - want) > 1e-9 * (1.0 + want):
                    return False
        return True

    def __repr__(self) -> str:
        return f"TreeRouter(root={self._tree.root}, size={self.size})"
