"""Command-line interface: run any registered experiment from the shell.

Usage::

    python -m repro list
    python -m repro table1 [--epsilon 0.5] [--pairs 300] [--jobs 4]
                           [--json] [--cache-dir .repro-cache]
    python -m repro resilience [--pairs 100] [--jobs 4] [--json]
    python -m repro report [--output EXPERIMENTS.md] [--jobs 4]

Commands are generated from the experiment registry
(:data:`repro.pipeline.registry.REGISTRY`); ``report`` regenerates
EXPERIMENTS.md.  Common flags:

* ``--jobs N``  — evaluate independent cells in ``N`` worker processes
  (``0`` = all cores); results are identical to the serial run.
* ``--json``    — emit the tables as JSON records instead of ASCII.
* ``--cache-dir DIR`` — persist built artifacts (metrics, hierarchies,
  packings, schemes) to an on-disk cache reused by later runs; clear it
  by deleting the directory.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import report
from repro.pipeline.context import BuildContext
from repro.pipeline.registry import REGISTRY, run_experiment


def _context_from(args: argparse.Namespace) -> BuildContext:
    return BuildContext(cache_dir=getattr(args, "cache_dir", None))


def _registry_command(name: str) -> Callable[[argparse.Namespace], None]:
    def _cmd(args: argparse.Namespace) -> None:
        tables = run_experiment(
            name,
            epsilon=args.epsilon,
            pair_count=args.pairs,
            context=_context_from(args),
            jobs=args.jobs,
        )
        if args.json:
            print(json.dumps([t.to_dict() for t in tables], indent=2))
        else:
            for table in tables:
                table.print()

    _cmd.__name__ = f"_cmd_{name.replace('-', '_')}"
    return _cmd


def _cmd_report(args: argparse.Namespace) -> None:
    content = report.generate(
        pair_count=args.pairs,
        context=_context_from(args),
        jobs=args.jobs,
    )
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output}")


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    **{name: _registry_command(name) for name in REGISTRY},
    "report": _cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Compact Routing "
            "Schemes in Networks of Low Doubling Dimension' as "
            "measured experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name in COMMANDS:
        spec = REGISTRY.get(name)
        help_text = spec.help if spec else "regenerate EXPERIMENTS.md"
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--epsilon", type=float, default=0.5)
        cmd.add_argument("--pairs", type=int, default=300)
        cmd.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent cells (0 = all cores)",
        )
        cmd.add_argument(
            "--json",
            action="store_true",
            help="emit tables as JSON instead of ASCII",
        )
        cmd.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persist built artifacts on disk (e.g. .repro-cache)",
        )
        if name == "report":
            cmd.add_argument("--output", default="EXPERIMENTS.md")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        width = max(len(name) for name in COMMANDS)
        for name in COMMANDS:
            spec = REGISTRY.get(name)
            help_text = spec.help if spec else "regenerate EXPERIMENTS.md"
            print(f"  {name.ljust(width)}  {help_text}")
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
