"""Command-line interface: run any registered experiment from the shell.

Usage::

    python -m repro list
    python -m repro table1 [--epsilon 0.5] [--pairs 300] [--jobs 4]
                           [--json] [--cache-dir .repro-cache] [--profile]
    python -m repro resilience [--pairs 100] [--jobs 4] [--json]
    python -m repro chaos [--pairs 100] [--loss 0.05] [--jobs 4] [--json]
    python -m repro scale [--sizes 256,2048,10000] [--pairs 100] [--json]
                          [--vicinity-scale 1,4,16] [--landmarks 8,16,32]
    python -m repro throughput [--sizes 256,2048] [--batch-sizes 64,4096]
                               [--shards 1,2,4] [--pairs 300] [--json]
    python -m repro report [--output EXPERIMENTS.md] [--jobs 4]
                           [--provenance]
    python -m repro trace grid-8x8 nameind-sf 0 63 [--epsilon 0.5] [--json]

Commands are generated from the experiment registry
(:data:`repro.pipeline.registry.REGISTRY`); ``report`` regenerates
EXPERIMENTS.md; ``trace`` prints the per-hop decision record of one
route (see :mod:`repro.observability`).  Common flags:

* ``--jobs N``  — evaluate independent cells in ``N`` worker processes
  (``0`` = all cores); results are identical to the serial run.
* ``--json``    — emit the tables as JSON records instead of ASCII.
* ``--cache-dir DIR`` — persist built artifacts (metrics, hierarchies,
  packings, schemes) to an on-disk cache reused by later runs; clear it
  by deleting the directory.
* ``--profile`` — print the build-time profile (seconds per artifact
  kind, cache hit/miss counts) to stderr after the command, keeping
  ``--json`` output on stdout clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import report
from repro.pipeline.context import BuildContext
from repro.pipeline.registry import REGISTRY, run_experiment


def _context_from(args: argparse.Namespace) -> BuildContext:
    return BuildContext(cache_dir=getattr(args, "cache_dir", None))


def _int_tuple(text: str) -> tuple:
    return tuple(int(part) for part in text.split(",") if part)


def _emit_profile(args: argparse.Namespace, context: BuildContext) -> None:
    if getattr(args, "profile", False):
        print(json.dumps(context.profile_report(), indent=2), file=sys.stderr)


def _registry_command(name: str) -> Callable[[argparse.Namespace], None]:
    def _cmd(args: argparse.Namespace) -> None:
        context = _context_from(args)
        # Per-command flags (churn --edits, chaos --loss) forward as
        # extra kwargs; the registry drops them for runners that do
        # not accept them.
        extra = {
            key: getattr(args, key)
            for key in (
                "edits",
                "loss",
                "sizes",
                "batch_sizes",
                "shards",
                "vicinity_scale",
                "landmarks",
            )
            if getattr(args, key, None) is not None
        }
        tables = run_experiment(
            name,
            epsilon=args.epsilon,
            pair_count=args.pairs,
            context=context,
            jobs=args.jobs,
            **extra,
        )
        if args.json:
            print(json.dumps([t.to_dict() for t in tables], indent=2))
        else:
            for table in tables:
                table.print()
        _emit_profile(args, context)

    _cmd.__name__ = f"_cmd_{name.replace('-', '_')}"
    return _cmd


def _cmd_report(args: argparse.Namespace) -> None:
    context = _context_from(args)
    content = report.generate(
        pair_count=args.pairs,
        context=context,
        jobs=args.jobs,
        provenance=args.provenance,
    )
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output}")
    _emit_profile(args, context)


def _cmd_trace(args: argparse.Namespace) -> None:
    from repro.observability.catalog import resolve_graph, resolve_scheme
    from repro.observability.trace import format_trace, replay

    try:
        graph = resolve_graph(args.graph)
        scheme_cls = resolve_scheme(args.scheme)
    except ValueError as exc:
        raise SystemExit(str(exc))
    from repro.core.params import SchemeParameters

    context = _context_from(args)
    metric = context.metric(graph)
    if not (0 <= args.source < metric.n and 0 <= args.target < metric.n):
        raise SystemExit(
            f"source/target must be node ids in [0, {metric.n})"
        )
    scheme = context.scheme(
        scheme_cls, metric, SchemeParameters(epsilon=args.epsilon)
    )
    result, trace = scheme.trace_route(args.source, args.target)
    if not replay(trace).matches(result.path, result.cost):
        raise SystemExit(
            "internal error: trace replay does not reproduce the route"
        )
    if args.json:
        print(trace.to_json())
    else:
        print(format_trace(trace))
        print(
            f"stretch {result.stretch:.4f} "
            f"(cost {result.cost:.3f} / optimal {result.optimal:.3f})"
        )
    _emit_profile(args, context)


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    **{name: _registry_command(name) for name in REGISTRY},
    "report": _cmd_report,
    "trace": _cmd_trace,
}

_COMMAND_HELP = {
    "report": "regenerate EXPERIMENTS.md",
    "trace": "print the per-hop decision trace of one route",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Compact Routing "
            "Schemes in Networks of Low Doubling Dimension' as "
            "measured experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name in COMMANDS:
        spec = REGISTRY.get(name)
        help_text = spec.help if spec else _COMMAND_HELP[name]
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--epsilon", type=float, default=0.5)
        cmd.add_argument(
            "--json",
            action="store_true",
            help="emit results as JSON instead of text",
        )
        cmd.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persist built artifacts on disk (e.g. .repro-cache)",
        )
        cmd.add_argument(
            "--profile",
            action="store_true",
            help="print the build-time profile to stderr afterwards",
        )
        if name == "trace":
            cmd.add_argument("graph", help="fixture graph slug (e.g. grid-8x8)")
            cmd.add_argument("scheme", help="scheme slug (e.g. nameind-sf)")
            cmd.add_argument("source", type=int, help="source node id")
            cmd.add_argument("target", type=int, help="target node id")
            continue
        cmd.add_argument("--pairs", type=int, default=300)
        cmd.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent cells (0 = all cores)",
        )
        if name == "churn":
            cmd.add_argument(
                "--edits",
                type=int,
                default=500,
                help="total edits to commit across the churn stream",
            )
        if name == "chaos":
            cmd.add_argument(
                "--loss",
                type=float,
                default=None,
                help=(
                    "single loss rate instead of the default sweep "
                    "(also sets the composed-regime channel loss)"
                ),
            )
        if name in ("scale", "throughput"):
            cmd.add_argument(
                "--sizes",
                type=_int_tuple,
                default=None,
                metavar="N,N,...",
                help=(
                    "comma-separated graph sizes for the scaling study "
                    "(default 256,1024,2048; try 256,2048,10000)"
                ),
            )
        if name == "scale":
            cmd.add_argument(
                "--vicinity-scale",
                dest="vicinity_scale",
                type=lambda text: tuple(
                    float(part) for part in text.split(",") if part
                ),
                default=None,
                metavar="X,X,...",
                help=(
                    "vicinity sizes for the landmark sweep, as "
                    "multiples of sqrt(n) (default 1,4,16)"
                ),
            )
            cmd.add_argument(
                "--landmarks",
                type=_int_tuple,
                default=None,
                metavar="K,K,...",
                help=(
                    "landmark counts for the landmark sweep "
                    "(default sqrt(n)/2, sqrt(n), 2*sqrt(n))"
                ),
            )
        if name == "throughput":
            cmd.add_argument(
                "--batch-sizes",
                dest="batch_sizes",
                type=_int_tuple,
                default=None,
                metavar="B,B,...",
                help="engine batch sizes to sweep (default 64,512,4096)",
            )
            cmd.add_argument(
                "--shards",
                type=_int_tuple,
                default=None,
                metavar="S,S,...",
                help=(
                    "worker counts for the partition-sliced "
                    "shared-memory serving sweep (default 1,2,4)"
                ),
            )
        if name == "report":
            cmd.add_argument("--output", default="EXPERIMENTS.md")
            cmd.add_argument(
                "--provenance",
                action="store_true",
                help="append the build-profile / trace provenance appendix",
            )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        width = max(len(name) for name in COMMANDS)
        for name in COMMANDS:
            spec = REGISTRY.get(name)
            help_text = spec.help if spec else _COMMAND_HELP[name]
            print(f"  {name.ljust(width)}  {help_text}")
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
