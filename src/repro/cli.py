"""Command-line interface: run any experiment from the shell.

Usage::

    python -m repro list
    python -m repro table1 [--epsilon 0.5] [--pairs 300]
    python -m repro table2 | fig1 | fig2 | fig3 | scalefree |
                    stretch-sweep | storage-scaling | structures | report

Each command prints the corresponding measured table (see DESIGN.md §3
for the experiment index); ``report`` regenerates EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import ablation, congestion, fig1, fig2, fig3
from repro.experiments import related_work, relaxed, report, scalefree
from repro.experiments import storage_audit, structures, sweeps
from repro.experiments import table1, table2


def _cmd_table1(args: argparse.Namespace) -> None:
    table1.run(epsilon=args.epsilon, pair_count=args.pairs).print()


def _cmd_table2(args: argparse.Namespace) -> None:
    table2.run(epsilon=args.epsilon, pair_count=args.pairs).print()


def _cmd_fig1(args: argparse.Namespace) -> None:
    fig1.run(epsilon=args.epsilon, pair_count=args.pairs).print()
    fig1.run_scalefree(epsilon=args.epsilon, pair_count=args.pairs).print()


def _cmd_fig2(args: argparse.Namespace) -> None:
    fig2.run(epsilon=args.epsilon, pair_count=args.pairs).print()


def _cmd_fig3(args: argparse.Namespace) -> None:
    fig3.run_construction().print()
    fig3.run_counting().print()
    fig3.run_adversary().print()


def _cmd_scalefree(args: argparse.Namespace) -> None:
    scalefree.run(epsilon=args.epsilon).print()


def _cmd_stretch_sweep(args: argparse.Namespace) -> None:
    sweeps.run_stretch_sweep(pair_count=args.pairs).print()


def _cmd_storage_scaling(args: argparse.Namespace) -> None:
    sweeps.run_storage_scaling(epsilon=args.epsilon).print()


def _cmd_structures(args: argparse.Namespace) -> None:
    structures.run(epsilon=args.epsilon).print()


def _cmd_related_work(args: argparse.Namespace) -> None:
    related_work.run(epsilon=args.epsilon, pair_count=args.pairs).print()


def _cmd_ablations(args: argparse.Namespace) -> None:
    ablation.run_tree_router(
        epsilon=args.epsilon, pair_count=args.pairs
    ).print()
    ablation.run_ring_restriction(epsilon=args.epsilon).print()
    ablation.run_packing_service().print()


def _cmd_storage_audit(args: argparse.Namespace) -> None:
    storage_audit.run(epsilon=args.epsilon).print()


def _cmd_congestion(args: argparse.Namespace) -> None:
    congestion.run(epsilon=args.epsilon, packet_count=args.pairs).print()


def _cmd_relaxed(args: argparse.Namespace) -> None:
    relaxed.run(epsilon=args.epsilon, pair_count=args.pairs).print()


def _cmd_report(args: argparse.Namespace) -> None:
    content = report.generate(pair_count=args.pairs)
    with open(args.output, "w") as handle:
        handle.write(content)
    print(f"wrote {args.output}")


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "scalefree": _cmd_scalefree,
    "stretch-sweep": _cmd_stretch_sweep,
    "storage-scaling": _cmd_storage_scaling,
    "structures": _cmd_structures,
    "related-work": _cmd_related_work,
    "ablations": _cmd_ablations,
    "congestion": _cmd_congestion,
    "relaxed": _cmd_relaxed,
    "storage-audit": _cmd_storage_audit,
    "report": _cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Compact Routing "
            "Schemes in Networks of Low Doubling Dimension' as "
            "measured experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name in COMMANDS:
        cmd = sub.add_parser(name, help=f"run experiment {name}")
        cmd.add_argument("--epsilon", type=float, default=0.5)
        cmd.add_argument("--pairs", type=int, default=300)
        if name == "report":
            cmd.add_argument("--output", default="EXPERIMENTS.md")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        for name in COMMANDS:
            print(f"  {name}")
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
