"""Approximate distance oracles over the net hierarchy."""

from repro.oracle.distance_oracle import DistanceOracle

__all__ = ["DistanceOracle"]
