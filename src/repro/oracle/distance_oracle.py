"""A ``(1+ε)``-approximate distance-labeling oracle from the net hierarchy.

The paper's introduction places compact routing among the problems that
"become easier" in doubling metrics alongside *distance estimation*
(Slivkins [24]; Kleinberg–Slivkins–Wexler [19]).  The same ring data the
labeled schemes store — ``X_i(u) = B_u(2^i/ε) ∩ Y_i`` with exact
distances — doubles as a distance *labeling*: two labels alone determine
an estimate

    ``est(u, v) = min over shared ring points x of d(u,x) + d(x,v)``,

which is an upper bound by the triangle inequality and at most
``(1 + O(ε)) d(u, v)``: at the first level ``i`` where the destination's
zooming ancestor ``v(i)`` appears in both rings, the detour through it
costs at most ``d(u,v) + 2·2^{i+1}``, while a miss at level ``i-1``
certifies ``d(u,v) > 2^{i-1}(1/ε - 2)`` — the Lemma 3.4 arithmetic,
reused.  Labels hold ``(1/ε)^{O(α)}`` entries per level over
``log Δ + 1`` levels (this companion oracle is deliberately the simple,
non-scale-free variant).

Requires ``ε <= 1/2`` like the labeled schemes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bitcount import bits_for_id
from repro.core.params import SchemeParameters
from repro.core.types import NodeId, PreprocessingError
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy

#: A node's distance label: level -> {net point -> exact distance}.
DistanceLabel = Dict[int, Dict[NodeId, float]]


class DistanceOracle:
    """``(1+ε)``-approximate distance labels over ``(V, d)``."""

    def __init__(
        self,
        metric: GraphMetric,
        params: Optional[SchemeParameters] = None,
        hierarchy: Optional[NetHierarchy] = None,
    ) -> None:
        if params is None:
            params = SchemeParameters()
        if params.epsilon > 0.5:
            raise PreprocessingError(
                "the distance oracle requires epsilon <= 1/2"
            )
        self._metric = metric
        self._params = params
        self._hierarchy = (
            hierarchy if hierarchy is not None else NetHierarchy(metric)
        )
        self._labels: List[DistanceLabel] = [
            {} for _ in metric.nodes
        ]
        self._build_labels()

    def _build_labels(self) -> None:
        metric = self._metric
        for i in self._hierarchy.levels:
            radius = (2.0**i) / self._params.epsilon
            for x in self._hierarchy.net(i):
                ids, d = metric.ball_with_distances(x, radius)
                for u, du in zip(ids, d):
                    self._labels[int(u)].setdefault(i, {})[x] = float(du)

    # ------------------------------------------------------------------

    @property
    def metric(self) -> GraphMetric:
        return self._metric

    @property
    def hierarchy(self) -> NetHierarchy:
        return self._hierarchy

    def label(self, u: NodeId) -> DistanceLabel:
        """u's distance label (level -> ring distances)."""
        return {i: dict(ring) for i, ring in self._labels[u].items()}

    def label_bits(self, u: NodeId) -> int:
        """Measured label size: one (id, distance) pair per entry."""
        unit = bits_for_id(self._metric.n)
        entries = sum(len(ring) for ring in self._labels[u].values())
        return entries * 2 * unit

    def max_label_bits(self) -> int:
        return max(self.label_bits(u) for u in self._metric.nodes)

    # ------------------------------------------------------------------

    @staticmethod
    def estimate_from_labels(
        label_u: DistanceLabel, label_v: DistanceLabel
    ) -> float:
        """Distance estimate from two labels alone (the labeling API)."""
        best = float("inf")
        for i, ring_u in label_u.items():
            ring_v = label_v.get(i)
            if not ring_v:
                continue
            for x, du in ring_u.items():
                dv = ring_v.get(x)
                if dv is not None and du + dv < best:
                    best = du + dv
        return best

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """``(1+O(ε))``-approximate ``d(u, v)``."""
        if u == v:
            return 0.0
        est = self.estimate_from_labels(self._labels[u], self._labels[v])
        if est == float("inf"):  # pragma: no cover - top ring is shared
            raise PreprocessingError(
                "labels share no ring point — corrupted hierarchy?"
            )
        return est

    def guarantee(self) -> float:
        """The approximation envelope ``1 + 8/(1/ε - 2)`` (ε < 1/2)."""
        inv = 1.0 / self._params.epsilon
        if inv <= 2.0:
            return float("inf")
        return 1.0 + 8.0 / (inv - 2.0)

    def verify(self, pairs) -> Tuple[float, float]:
        """Max and mean estimate/true ratio over the given pairs."""
        ratios = []
        for u, v in pairs:
            if u == v:
                continue
            ratios.append(
                self.estimate(u, v) / self._metric.distance(u, v)
            )
        return max(ratios), sum(ratios) / len(ratios)
