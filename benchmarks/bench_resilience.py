"""Benchmark the resilience subsystem (E16).

Reproduces the numbers recorded in ``BENCH_resilience.json``:

* ``routing_seconds`` — wall clock of the full E16 delivery/stretch
  table (4 graphs x 3 schemes x 3 policies, 300 pairs each);
* per-graph ``cold_seconds`` / ``incremental_seconds`` — rebuilding the
  scheme trio after a fail-and-recover cycle from a fresh context vs
  the warm context that built the pre-failure schemes (content-hash
  cache hits), with the artifact built/reused counts that make the
  saving auditable.

Run with ``PYTHONPATH=src python benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import json
import time

from repro.core.params import SchemeParameters
from repro.experiments.harness import standard_suite
from repro.experiments.resilience import SCHEME_LINEUP, run
from repro.pipeline.context import BuildContext
from repro.resilience.repair import measure_repair, rebuild_through_context


def main() -> None:
    context = BuildContext()
    start = time.perf_counter()
    run(pair_count=300, context=context, jobs=1)
    routing_seconds = round(time.perf_counter() - start, 2)

    params = SchemeParameters(epsilon=0.5)
    classes = [cls for cls, _ in SCHEME_LINEUP]
    repair = {}
    for graph_name, graph in standard_suite("small"):
        warm = BuildContext()
        rebuild_through_context(warm, graph, classes, params, label="prime")
        cold, incremental = measure_repair(
            graph, classes, params, warm_context=warm
        )
        repair[graph_name] = {
            "cold_seconds": round(cold.seconds, 4),
            "cold_built": cold.built_total,
            "incremental_seconds": round(incremental.seconds, 4),
            "incremental_built": incremental.built_total,
            "incremental_reused": incremental.reused_total,
        }

    print(
        json.dumps(
            {"routing_seconds": routing_seconds, "repair": repair},
            indent=2,
        )
    )


if __name__ == "__main__":
    main()
