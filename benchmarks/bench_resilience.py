"""Benchmark the resilience subsystem (E16).

Reproduces the numbers recorded in ``BENCH_resilience.json``:

* ``routing_seconds`` — wall clock of the full E16 delivery/stretch
  table (4 graphs x 3 schemes x 3 policies, 300 pairs each);
* per-graph ``recover`` — rebuilding the scheme trio after a
  fail-and-fully-recover cycle from a fresh context vs the warm context
  that built the pre-failure schemes.  The topology is content-identical
  to what the warm context cached, so the dirty set is empty and every
  substrate is a cache hit: the *best case*;
* per-graph ``edit`` — the honest repair figure: a real single-edge
  weight change applied through ``BuildContext.apply_edit``, which
  computes the edit's dirty node set and rebuilds only the artifact
  partitions (metric rows, hierarchy levels, ring blocks, search trees)
  intersecting it.  Built/reused counts are reported against that dirty
  set, and the incremental result is bit-identical to a cold rebuild
  (asserted in tests/test_churn.py).

Run with ``PYTHONPATH=src python benchmarks/bench_resilience.py``.
Pass ``--check`` to assert the structural invariants (edit-repair
builds strictly fewer artifacts than cold on every fixture) instead of
printing JSON — used by CI.
"""

from __future__ import annotations

import sys
import time

from _runner import run as run_bench

from repro.core.params import SchemeParameters
from repro.experiments.harness import standard_suite
from repro.experiments.resilience import (
    SCHEME_LINEUP,
    repair_edit_for,
    run,
)
from repro.pipeline.context import BuildContext
from repro.resilience.repair import (
    measure_edit_repair,
    measure_repair,
    rebuild_through_context,
)


def measure(pair_count: int = 300):
    """Collect the benchmark numbers (the slow part, ~30s serial)."""
    context = BuildContext()
    start = time.perf_counter()
    run(pair_count=pair_count, context=context, jobs=1)
    routing_seconds = round(time.perf_counter() - start, 2)

    params = SchemeParameters(epsilon=0.5)
    classes = [cls for cls, _ in SCHEME_LINEUP]
    repair = {}
    for graph_name, graph in standard_suite("small"):
        warm = BuildContext()
        rebuild_through_context(warm, graph, classes, params, label="prime")
        cold, incremental = measure_repair(
            graph, classes, params, warm_context=warm
        )
        edited = graph.copy()
        cold_e, incremental_e, edit_report = measure_edit_repair(
            edited, repair_edit_for(edited), classes, params
        )
        repair[graph_name] = {
            "recover": {
                "cold_seconds": round(cold.seconds, 4),
                "cold_built": cold.built_total,
                "incremental_seconds": round(incremental.seconds, 4),
                "incremental_built": incremental.built_total,
                "incremental_reused": incremental.reused_total,
            },
            "edit": {
                "edit": edit_report.edit.describe(),
                "dirty_rows": len(edit_report.dirty),
                "nodes": edited.number_of_nodes(),
                "cold_seconds": round(cold_e.seconds, 4),
                "cold_built": cold_e.built_total,
                "incremental_seconds": round(incremental_e.seconds, 4),
                "incremental_built": incremental_e.built_total,
                "incremental_reused": incremental_e.reused_total,
            },
        }
    return {"routing_seconds": routing_seconds, "repair": repair}


def check(results) -> None:
    """CI invariants: deterministic artifact counts, not wall clock."""
    for graph_name, events in results["repair"].items():
        recover = events["recover"]
        assert recover["incremental_built"] == 0, (
            f"{graph_name}: recover should be pure cache hits, "
            f"built {recover['incremental_built']}"
        )
        edit = events["edit"]
        assert edit["incremental_built"] < edit["cold_built"], (
            f"{graph_name}: edit repair built {edit['incremental_built']} "
            f">= cold {edit['cold_built']}"
        )
        assert 0 < edit["dirty_rows"] <= edit["nodes"], (
            f"{graph_name}: dirty set {edit['dirty_rows']} out of range"
        )
    print("bench_resilience --check: all invariants hold")


if __name__ == "__main__":
    sys.exit(
        run_bench(measure, check=lambda: check(measure(pair_count=60)))
    )
