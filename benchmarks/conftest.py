"""Benchmark configuration: print each regenerated table after timing.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §3).  Timing uses a single pedantic round — the quantity of
interest is the *content* of the table (stretch, bits), not wall-clock —
but pytest-benchmark still records build+evaluate time for regressions.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with one round and return (and print) its table."""
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    if hasattr(result, "formatted"):
        print()
        print(result.formatted())
    return result


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
