"""E7 — stretch vs epsilon for all four compact schemes.

Run with: ``pytest benchmarks/bench_stretch_sweep.py --benchmark-only -s``
"""

from repro.experiments import sweeps


def test_stretch_sweep(once):
    result = once(
        sweeps.run_stretch_sweep,
        epsilons=[0.125, 0.25, 0.375, 0.5],
        grid_side=8,
        pair_count=250,
    )
    for row in result.rows:
        eps = row[0]
        labeled_bound = 1 + 8 * eps
        assert row[1] <= labeled_bound  # labeled non-SF
        assert row[2] <= labeled_bound  # labeled SF (Thm 1.2)
        if eps < 0.5:
            inv = 1 / eps
            nameind_bound = (1 + 8 * (inv + 1) / (inv - 2)) * 1.3
            assert row[3] <= nameind_bound  # Thm 1.4
            assert row[4] <= nameind_bound  # Thm 1.1
