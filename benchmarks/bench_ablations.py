"""Ablation benchmarks A1-A3 (see repro.experiments.ablation).

Run with: ``pytest benchmarks/bench_ablations.py --benchmark-only -s``
"""

from repro.experiments import ablation


def test_a1_tree_router_substrate(once):
    result = once(ablation.run_tree_router, epsilon=0.5, pair_count=150)
    by_graph = {}
    for row in result.rows:
        by_graph.setdefault(row[0], []).append(row)
    for rows in by_graph.values():
        interval, heavy = rows
        # Identical stretch: both substrates route optimally on trees.
        assert interval[2] == heavy[2]
        # Heavy-path labels cost header bits; intervals cost none extra.
        assert heavy[4] >= interval[4]


def test_a2_ring_restriction_savings_grow_with_delta(once):
    result = once(ablation.run_ring_restriction, epsilon=0.5)
    factors = [row[4] for row in result.rows]
    assert factors == sorted(factors)
    assert factors[-1] >= 2.0


def test_a3_packing_service(once):
    result = once(ablation.run_packing_service)
    for row in result.rows:
        # Most levels are served by packed balls...
        assert row[3] >= 0.5
        # ...within Claim 3.9's per-node budget.
        assert row[4] <= 4 * 6  # 4 log2(49) rounded up
