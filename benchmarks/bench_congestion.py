"""E11 — traffic simulation of the schemes under load.

Run with: ``pytest benchmarks/bench_congestion.py --benchmark-only -s``
"""

from repro.experiments import congestion


def test_congestion_under_poisson_load(once):
    result = once(congestion.run, packet_count=200)
    by_graph = {}
    for row in result.rows:
        by_graph.setdefault(row[0], {})[row[1]] = row
    for rows in by_graph.values():
        base = rows["baseline"]
        for label in ("Theorem 1.4", "Theorem 1.1"):
            row = rows[label]
            # Compact routing inflates traffic (the stretch, aggregated)
            assert row[5] >= base[5]
            # ...and concentrates load (hot search-tree links).
            assert row[6] >= 1.0
