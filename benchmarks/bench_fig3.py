"""E5 — Figure 3 + Theorem 1.3: lower-bound tree and counting audit.

Run with: ``pytest benchmarks/bench_fig3.py --benchmark-only -s``
"""

from repro.experiments import fig3


def test_fig3_tree_construction(once):
    result = once(fig3.run_construction, epsilons=[4.0, 6.0], n=600)
    for row in result.rows:
        # |V| = n exactly; Delta within the O(2^{1/eps} n) bound.
        assert float(row[4]) <= float(row[5]) + 1e-9
        # Greedy doubling estimate near the Lemma 5.8 bound (+1 slack).
        assert row[6] <= row[7] + 1.0


def test_fig3_counting_audit(once):
    result = once(fig3.run_counting, epsilons=[1.0, 2.0, 4.0, 6.0])
    for row in result.rows:
        assert row[4] is True  # Claim 5.10 base case
        assert row[7] is True  # Claim 5.11


def test_fig3_empirical_adversary(once):
    result = once(
        fig3.run_adversary,
        epsilon=6.0,
        n=256,
        namings=3,
        routes_per_naming=15,
    )
    worst = result.rows[-1][2]
    # The squeeze: observed stretch sits between 1 and the 9 + O(eps)
    # guarantee of Theorem 1.4.
    assert 1.0 <= worst <= 9 + 8 * 0.5
