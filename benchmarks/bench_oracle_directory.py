"""Companion systems: distance-oracle quality and directory locality.

Run with: ``pytest benchmarks/bench_oracle_directory.py --benchmark-only -s``
"""

from repro.core.params import SchemeParameters
from repro.directory.object_directory import ObjectDirectory
from repro.experiments.harness import sample_pairs
from repro.graphs.generators import grid_2d, random_geometric
from repro.metric.graph_metric import GraphMetric
from repro.oracle.distance_oracle import DistanceOracle

PARAMS = SchemeParameters(epsilon=0.25)


def test_distance_oracle_approximation(once):
    def build_and_verify():
        results = []
        for graph in (grid_2d(8), random_geometric(64, seed=11)):
            metric = GraphMetric(graph)
            oracle = DistanceOracle(metric, PARAMS)
            pairs = sample_pairs(metric, 300)
            worst, mean = oracle.verify(pairs)
            results.append((worst, mean, oracle.max_label_bits()))
        return results

    results = once(build_and_verify)
    for worst, mean, label_bits in results:
        assert worst <= 1.0 + 8.0 / (4.0 - 2.0) + 1e-9
        assert mean <= 1.5
        assert label_bits > 0


def test_directory_locality_under_replication(once):
    def build_and_measure():
        metric = GraphMetric(grid_2d(7))
        directory = ObjectDirectory(metric, PARAMS)
        for holder in (0, 6, 42, 48, 24):
            directory.publish("obj", holder)
        worst = 0.0
        for origin in metric.nodes:
            result = directory.lookup(origin, "obj")
            if result.nearest_copy_distance > 0:
                worst = max(worst, result.locality_ratio)
        return worst, directory.locality_guarantee()

    worst, guarantee = once(build_and_measure)
    assert worst <= guarantee * 1.05
