"""Benchmark the compiled batch engine (E20 serving throughput).

Reproduces the numbers recorded in ``BENCH_throughput.json``: compiled
versus interpreted routes/second for the landmark name-independent
scheme on preferential-attachment graphs over the lazy substrate —
a batch-size sweep and a shard-count sweep at each size, through the
acceptance fixture ``GraphMetric(preferential_attachment(2048, m=2,
seed=1), strategy="lazy")``, where the engine must clear **10×** the
interpreted hop loop.

The shard sweep measures the partition-sliced shared-memory serving
mode: workers attach to table slices in named segments and rounds
exchange only index sets, so the recorded per-worker resident bytes
must stay strictly below full replication, and the n = 10⁴ sharded
rates must beat the replicated-mode rates the seed committed
(:data:`REPLICATED_SEED`).

Run with ``PYTHONPATH=src python benchmarks/bench_throughput.py``
(writes ``BENCH_throughput.json``).  Pass ``--check`` for the CI
variant: on a smoke fixture (n = 256) the compiled engine must be
bit-identical to the interpreter on a pair sample (path, cost, legs,
header bits — exact equality, no tolerance), the sharded router must
be bit-identical to ``BatchRouter`` at shards > 1, and the compiled
loop must be at least as fast as the interpreted one; no wall-clock
numbers are committed.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from _runner import run
from repro.engine import BatchRouter, ShardedRouter
from repro.experiments.throughput import (
    _pair_arrays,
    compiled_rate,
    interpreted_rate,
)
from repro.graphs.generators import preferential_attachment
from repro.metric.graph_metric import GraphMetric
from repro.pipeline.sampling import sample_ordered_pairs
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme

SIZES = (256, 2048, 10_000)
BATCH_SIZES = (256, 2048, 8192)
SHARDS = (1, 2, 4)
#: Acceptance floor on the n=2048 fixture (ISSUE 9).
REQUIRED_SPEEDUP = 10.0
#: Sharded routes/s committed by the table-replicating serving mode
#: (the seed of ISSUE 10) — the partition-sliced mode must beat these
#: at n = 10⁴ for every shards > 1.
REPLICATED_SEED = {
    256: {1: 310861, 2: 78824, 4: 59264},
    2048: {1: 159261, 2: 40840, 4: 26692},
    10_000: {1: 106794, 2: 33511, 4: 24662},
}


def _build(n: int):
    metric = GraphMetric(
        preferential_attachment(n, m=2, seed=1), strategy="lazy"
    )
    scheme = LandmarkNameIndependentScheme(metric)
    return metric, scheme, scheme.compile_tables()


def measure_point(n: int) -> dict:
    metric, scheme, tables = _build(n)
    compile_start = time.perf_counter()
    scheme.compile_tables()
    compile_seconds = time.perf_counter() - compile_start
    src, tgt = _pair_arrays(n, 2000, seed=3)
    # Warm the lazy substrate outside both timed regions.
    for u, v in zip(src[:50], tgt[:50]):
        scheme.route(int(u), int(v))
    interpreted = interpreted_rate(scheme, src[:1000], tgt[:1000])
    router = BatchRouter(tables)
    batches = {}
    for batch in BATCH_SIZES:
        reps = max(1, (4 * batch) // len(src))
        batches[str(batch)] = int(
            compiled_rate(router, np.tile(src, reps), np.tile(tgt, reps), batch)
        )
    shard_rates = {}
    shard_bytes = {}
    big_src, big_tgt = np.tile(src, 4), np.tile(tgt, 4)
    for shards in SHARDS:
        with ShardedRouter(tables, shards=shards) as sharded:
            start = time.perf_counter()
            sharded.route_arrays(big_src, big_tgt)
            shard_rates[str(shards)] = int(
                len(big_src) / (time.perf_counter() - start)
            )
            resident = sharded.partition_bytes()
            shard_bytes[str(shards)] = int(max(resident["per_worker"]))
    best = max(batches.values())
    return {
        "n": n,
        "compile_seconds": round(compile_seconds, 3),
        "compiled_bytes": int(tables.nbytes()),
        "interpreted_routes_per_sec": int(interpreted),
        "compiled_routes_per_sec_by_batch": batches,
        "sharded_routes_per_sec_by_shards": shard_rates,
        "sharded_worker_bytes_by_shards": shard_bytes,
        "best_speedup": round(best / interpreted, 1),
    }


def measure() -> dict:
    points = [measure_point(n) for n in SIZES]
    acceptance = next(p for p in points if p["n"] == 2048)
    assert acceptance["best_speedup"] >= REQUIRED_SPEEDUP, (
        f"n=2048 speedup {acceptance['best_speedup']} < "
        f"{REQUIRED_SPEEDUP} (acceptance criterion)"
    )
    for point in points:
        for shards in SHARDS:
            if shards == 1:
                continue
            worker_bytes = point["sharded_worker_bytes_by_shards"][
                str(shards)
            ]
            assert worker_bytes < point["compiled_bytes"], (
                f"n={point['n']} shards={shards}: per-worker resident "
                f"{worker_bytes} bytes not below replication "
                f"{point['compiled_bytes']} (acceptance criterion)"
            )
    big = next(p for p in points if p["n"] == 10_000)
    for shards in SHARDS:
        if shards == 1:
            continue
        rate = big["sharded_routes_per_sec_by_shards"][str(shards)]
        floor = REPLICATED_SEED[10_000][shards]
        assert rate > floor, (
            f"n=10000 shards={shards}: sliced-mode {rate}/s does not "
            f"beat the replicated-mode seed {floor}/s "
            "(acceptance criterion)"
        )
    return {
        "graph_family": "preferential_attachment(m=2, seed=1)",
        "scheme": "LandmarkNameIndependentScheme",
        "substrate": "lazy",
        "pair_sample": 2000,
        "required_speedup_n2048": REQUIRED_SPEEDUP,
        "replicated_seed_routes_per_sec": {
            str(n): {str(s): r for s, r in by_shards.items()}
            for n, by_shards in REPLICATED_SEED.items()
        },
        "trajectory": points,
        "note": (
            "compiled output is bit-identical to route() by the "
            "property tests in tests/test_engine.py; sharded rows "
            "are the partition-sliced shared-memory mode (workers map "
            "table slices, rounds exchange index sets), measured "
            "against the replicated-mode seed rates kept above; "
            "sharded_worker_bytes is the largest per-worker resident "
            "table mapping, always below compiled_bytes replication"
        ),
    }


def check() -> None:
    """CI invariants: bit-identity, and compiled at least as fast."""
    n = 256
    metric, scheme, tables = _build(n)
    router = BatchRouter(tables, metric=metric)
    pairs = sample_ordered_pairs(n, 300, seed=0)
    compiled = router.route_batch(
        [u for u, _ in pairs], [v for _, v in pairs]
    )
    for (u, v), got in zip(pairs, compiled):
        want = scheme.route(u, v)
        assert got.path == want.path, (u, v)
        assert got.cost == want.cost, (u, v)
        assert got.legs == want.legs, (u, v)
        assert got.header_bits == want.header_bits, (u, v)

    src = np.asarray([u for u, _ in pairs], dtype=np.int64)
    tgt = np.asarray([v for _, v in pairs], dtype=np.int64)
    engine = BatchRouter(tables)
    single = engine.route_arrays(src, tgt)
    for shards in (2, 3):
        with ShardedRouter(tables, shards=shards) as sharded:
            multi = sharded.route_arrays(src, tgt)
            resident = sharded.partition_bytes()
        np.testing.assert_array_equal(single["target"], multi["target"])
        np.testing.assert_array_equal(single["cost"], multi["cost"])
        np.testing.assert_array_equal(single["legs"], multi["legs"])
        np.testing.assert_array_equal(
            single["zerohop"], multi["zerohop"]
        )
        assert max(resident["per_worker"]) < resident["replicated"], (
            f"shards={shards}: per-worker resident bytes not below "
            "full replication"
        )

    interpreted = interpreted_rate(scheme, src, tgt)
    rate = compiled_rate(engine, np.tile(src, 8), np.tile(tgt, 8), 1024)
    assert rate >= interpreted, (
        f"compiled {int(rate)}/s slower than interpreted "
        f"{int(interpreted)}/s on the smoke fixture"
    )
    print(
        "bench_throughput --check: bit-identity holds (single and "
        f"sharded); compiled {int(rate)}/s >= interpreted "
        f"{int(interpreted)}/s"
    )


if __name__ == "__main__":
    sys.exit(run(measure, check, output="BENCH_throughput.json"))
