"""Benchmark the chaos subsystem (E18).

Reproduces the numbers recorded in ``BENCH_chaos.json``:

* the **loss sweep** — all six schemes on the chaos suite, each loss
  point served twice: fail-fast (no ARQ) and reliability mode (ARQ +
  checksummed headers) — both regimes recorded side by side;
* a **fail-fast loss series** at denser loss points, the raw
  delivery-vs-loss degradation curve;
* the **composed regime** — ``ChaosNetwork`` over ``DegradedNetwork``
  with a ``ResilientRouter`` (stale tables + dead links + lossy
  channel);
* the **table-integrity audit** — corrupt, detect, heal via row
  splicing, verify bit-identical to a cold rebuild.

Every number is deterministic: fault draws are stateless functions of
``derive_seed`` streams, and goodput/latency are *simulated* time, not
wall-clock.

Run with ``PYTHONPATH=src python benchmarks/bench_chaos.py``.
Pass ``--check`` for the CI variant, which asserts the invariants:

* zero faults + no ARQ => delivery rate exactly 1.0, zero retransmits;
* fail-fast delivery is monotone non-increasing in the loss rate
  (guaranteed by the fixed-seed coupling: the drop draw is the first
  draw of each per-crossing stream and is loss-independent);
* at 5% loss with ARQ, every scheme recovers to >= 0.99 delivery with
  nonzero retransmission overhead and zero undetected corruption,
  while the fail-fast regime is strictly worse;
* injected table corruption is detected on 100% of nodes and healed
  to bit-identity with a cold rebuild.
"""

from __future__ import annotations

import random
import sys

from _runner import run as run_bench

from repro.chaos import ChaosConfig, ChaosNetwork
from repro.chaos.audit import (
    CorruptionInjector,
    TableAuditor,
    quarantine_and_repair,
    verify_against_cold,
)
from repro.core.params import SchemeParameters
from repro.core.seeding import derive_seed
from repro.experiments.chaos import (
    CORRUPTION,
    JITTER,
    MASTER_SEED,
    RELIABLE_ARQ,
    SCHEME_LINEUP,
    run,
    run_audit,
    run_degraded,
)
from repro.experiments.harness import standard_suite
from repro.pipeline.context import BuildContext
from repro.runtime.simulator import TrafficSimulator, uniform_demands
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme

DEMANDS = 200
FAILFAST_LOSSES = (0.0, 0.05, 0.1, 0.25, 0.5, 0.8)


def _grid_demands(context: BuildContext):
    _, graph = standard_suite("small")[0]
    metric = context.metric(graph)
    demands = uniform_demands(
        metric.n,
        DEMANDS,
        rate=2.0,
        seed=derive_seed(MASTER_SEED, "demands"),
    )
    return metric, demands


def failfast_series(context: BuildContext):
    """Delivery vs loss, one attempt per packet, all six schemes.

    Corruption is held at zero so the zero-loss point is exactly 1.0
    and the whole curve isolates the drop process.
    """
    metric, demands = _grid_demands(context)
    series = {}
    for scheme_cls, label in SCHEME_LINEUP:
        scheme = context.scheme(
            scheme_cls, metric, SchemeParameters(epsilon=0.5)
        )
        sim = TrafficSimulator(scheme)
        points = []
        for loss in FAILFAST_LOSSES:
            chaos = ChaosNetwork(
                metric,
                ChaosConfig(loss=loss),
                seed=derive_seed(MASTER_SEED, "chaos"),
            )
            report = sim.run(demands, chaos=chaos)
            points.append(
                {
                    "loss": loss,
                    "delivery_rate": round(report.delivery_rate(), 4),
                    "goodput": round(report.goodput(), 4),
                }
            )
        series[label] = points
    return series


def measure():
    context = BuildContext()
    return {
        "graph_suite": "standard small minus grid-with-holes (see E18)",
        "demands": DEMANDS,
        "master_seed": MASTER_SEED,
        "jitter": JITTER,
        "corruption": CORRUPTION,
        "arq": {
            "max_retries": RELIABLE_ARQ.max_retries,
            "backoff": RELIABLE_ARQ.backoff,
            "backoff_cap": RELIABLE_ARQ.backoff_cap,
            "checksum_bits": RELIABLE_ARQ.checksum_bits,
        },
        "sweep": run(pair_count=DEMANDS, context=context).to_dict(),
        "failfast_loss_series": failfast_series(context),
        "composed": run_degraded(
            pair_count=150, context=context
        ).to_dict(),
        "audit": run_audit().to_dict(),
    }


def check() -> None:
    """CI invariants (deterministic, no wall-clock assertions)."""
    context = BuildContext()
    metric, demands = _grid_demands(context)
    params = SchemeParameters(epsilon=0.5)
    arq_rates = {}
    for scheme_cls, label in SCHEME_LINEUP:
        scheme = context.scheme(scheme_cls, metric, params)
        sim = TrafficSimulator(scheme)

        # 1. Faultless channel, no ARQ: nothing may be lost or resent.
        calm = sim.run(
            demands,
            chaos=ChaosNetwork(
                metric, seed=derive_seed(MASTER_SEED, "chaos")
            ),
        )
        assert calm.delivery_rate() == 1.0, (
            f"{label}: zero-loss delivery {calm.delivery_rate()} != 1.0"
        )
        assert calm.retransmissions() == 0, (
            f"{label}: retransmissions on a faultless channel"
        )
        assert calm.retransmission_overhead() == 0.0, (
            f"{label}: overhead on a faultless channel"
        )

        # 2. Fail-fast delivery is monotone non-increasing in loss.
        rates = []
        for loss in FAILFAST_LOSSES:
            chaos = ChaosNetwork(
                metric,
                ChaosConfig(loss=loss),
                seed=derive_seed(MASTER_SEED, "chaos"),
            )
            rates.append(sim.run(demands, chaos=chaos).delivery_rate())
        assert rates[0] == 1.0, f"{label}: rate at loss 0 is {rates[0]}"
        assert all(a >= b for a, b in zip(rates, rates[1:])), (
            f"{label}: delivery not monotone vs loss: {rates}"
        )

        # 3. ARQ at 5% loss (plus jitter and corruption) recovers to
        #    >= 0.99 with real retransmission work and no undetected
        #    corruption; fail-fast at the same point is strictly worse.
        stressed = ChaosConfig(
            loss=0.05, jitter=JITTER, corruption=CORRUPTION
        )
        reliable = sim.run(
            demands,
            chaos=ChaosNetwork(
                metric, stressed, seed=derive_seed(MASTER_SEED, "chaos")
            ),
            arq=RELIABLE_ARQ,
        )
        failfast = sim.run(
            demands,
            chaos=ChaosNetwork(
                metric, stressed, seed=derive_seed(MASTER_SEED, "chaos")
            ),
        )
        arq_rates[label] = reliable.delivery_rate()
        assert reliable.delivery_rate() >= 0.99, (
            f"{label}: ARQ delivery {reliable.delivery_rate()} < 0.99"
        )
        assert reliable.retransmissions() > 0, (
            f"{label}: ARQ reported no retransmissions at 5% loss"
        )
        assert reliable.retransmission_overhead() > 0.0, (
            f"{label}: ARQ overhead is zero at 5% loss"
        )
        assert reliable.corrupt_undetected() == 0, (
            f"{label}: single-bit corruption slipped past the CRC"
        )
        assert failfast.delivery_rate() < reliable.delivery_rate(), (
            f"{label}: fail-fast {failfast.delivery_rate()} not worse "
            f"than ARQ {reliable.delivery_rate()}"
        )

    # 4. Table corruption: 100% detection, healed via row splicing,
    #    bit-identical to a cold rebuild afterwards.
    audit_context = BuildContext()
    _, graph = standard_suite("small")[0]
    audit_metric = audit_context.metric(graph)
    scheme = audit_context.scheme(
        ScaleFreeNameIndependentScheme, audit_metric, params
    )
    auditor = TableAuditor(audit_metric)
    rng = random.Random(derive_seed(MASTER_SEED, "corrupt-sample"))
    victims = sorted(rng.sample(range(audit_metric.n), 6))
    injected = CorruptionInjector(
        seed=derive_seed(MASTER_SEED, "corrupt")
    ).corrupt(audit_metric, victims)
    report = quarantine_and_repair(
        audit_context, auditor, injected=injected
    )
    assert report.detection_rate == 1.0, (
        f"detected {report.detected} of injected {report.injected}"
    )
    assert report.clean_after, "re-audit after row splicing not clean"
    pairs = verify_against_cold(
        scheme,
        ScaleFreeNameIndependentScheme,
        params,
        seed=derive_seed(MASTER_SEED, "verify-pairs"),
    )
    assert pairs > 0
    print("bench_chaos --check: all invariants hold")
    print(
        "  ARQ delivery at 5% loss:",
        {k: round(v, 4) for k, v in arq_rates.items()},
    )


if __name__ == "__main__":
    sys.exit(run_bench(measure, check))
