"""Benchmark the churn subsystem (E17).

Reproduces the numbers recorded in ``BENCH_churn.json``: one scheme
(Theorem 1.1) driven through a 500-edit deterministic churn stream on
the grid 8x8 fixture under continuous packet load, once per fallback
policy.  Every cell replays the identical edit stream, so the policies
are a paired comparison.  Recorded per policy:

* the aggregate — repair throughput (edits per second of apply +
  incremental-rebuild time), mean delivery rate and stretch inside the
  staleness windows, total artifacts built vs reused;
* the **staleness-stretch vs repair-throughput curve** — one point per
  round: delivery rate and mean stretch of the packets routed against
  stale tables, alongside that round's repair throughput and dirty-row
  count.

Every 5th round the warm tables are asserted bit-identical (routes,
costs, ``table_bits_vector``) to a cold rebuild of the current graph;
any divergence raises and fails the benchmark.

Run with ``PYTHONPATH=src python benchmarks/bench_churn.py``.
Pass ``--check`` for the CI variant: a shorter stream with a tighter
verification cadence, plus a weight-only stream asserting that
incremental repair genuinely reuses artifacts (strictly fewer built
than a cold rebuild constructs).  ``--check`` asserts deterministic
invariants, not wall-clock numbers.
"""

from __future__ import annotations

import sys

from _runner import run

from repro.churn.driver import ChurnDriver
from repro.churn.stream import EditStream
from repro.core.edits import EditKind
from repro.core.params import SchemeParameters
from repro.experiments.harness import standard_suite
from repro.pipeline.context import BuildContext
from repro.resilience.repair import rebuild_through_context
from repro.resilience.router import POLICIES
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme

SEED = 23
VERIFY_EVERY = 5


def run_policy(policy: str, edits: int, verify_every: int = VERIFY_EVERY):
    """One churn run: Theorem 1.1 on grid 8x8, under ``policy``."""
    _, graph = standard_suite("small")[0]
    driver = ChurnDriver(
        graph.copy(),
        ScaleFreeNameIndependentScheme,
        policy=policy,
        params=SchemeParameters(epsilon=0.5),
        seed=SEED,
        edits_per_round=10,
        pairs_per_round=20,
        verify_every=verify_every,
    )
    return driver.run(edits=edits)


def run_fine_grained(edits: int = 100):
    """Single-edit rounds, weight-only churn: the locality curve.

    At the default batch width of 10 the union of the edits' dirty sets
    approaches the whole node set, so per-round artifact reuse is
    modest — the honest aggregate, but it hides single-edit locality.
    This series commits one weight edit per round and records how much
    of the build each repair actually reuses.
    """
    _, graph = standard_suite("small")[0]
    stream = EditStream(seed=SEED, mix={EditKind.WEIGHT: 1.0})
    driver = ChurnDriver(
        graph.copy(),
        ScaleFreeNameIndependentScheme,
        policy="local-detour",
        params=SchemeParameters(epsilon=0.5),
        stream=stream,
        seed=SEED,
        edits_per_round=1,
        pairs_per_round=5,
        verify_every=20,
    )
    report = driver.run(edits=edits)
    return {
        "note": (
            "one weight edit per round; built/reused per round show "
            "repair locality (the batch-of-10 policy runs saturate the "
            "dirty-set union, so their reuse is structurally low)"
        ),
        "edits": edits,
        "repair_throughput_eps": round(report.repair_throughput, 3),
        "total_built": report.total_built,
        "total_reused": report.total_reused,
        "rounds": [
            {
                "round": r.index,
                "dirty_rows": r.dirty_rows,
                "built": sum(r.built.values()),
                "reused": sum(r.reused.values()),
                "repair_throughput_eps": round(r.repair_throughput, 3),
                "verified": r.verified,
            }
            for r in report.rounds
        ],
    }


def measure(edits: int = 500):
    policies = {}
    for policy in POLICIES:
        report = run_policy(policy, edits)
        summary = report.to_dict()
        # The full per-round records are bulky; keep the curve points.
        summary["rounds"] = [
            {
                "round": r.index,
                "edits": r.edit_count,
                "dirty_rows": r.dirty_rows,
                "full_rebuilds": r.full_rebuilds,
                "repair_throughput_eps": round(r.repair_throughput, 3),
                "delivery_rate": round(r.delivery_rate, 4),
                "mean_stretch": round(r.mean_stretch, 4),
                "max_stretch": round(r.max_stretch, 4),
                "verified": r.verified,
            }
            for r in report.rounds
        ]
        policies[policy] = summary
    return {
        "scheme": "Theorem 1.1 (ScaleFreeNameIndependentScheme)",
        "graph": "grid 8x8",
        "edits": edits,
        "seed": SEED,
        "verify_every_rounds": VERIFY_EVERY,
        "policies": policies,
        "fine_grained": run_fine_grained(),
    }


def check() -> None:
    """CI invariants (deterministic, no wall-clock assertions)."""
    # 1. A short stream per policy: runs end to end, every scheduled
    #    cold-rebuild bit-identity check passes (a divergence raises
    #    ChurnVerificationError before we get here).
    for policy in POLICIES:
        report = run_policy(policy, edits=60, verify_every=2)
        verified = sum(1 for r in report.rounds if r.verified)
        assert verified >= 2, (
            f"{policy}: expected >= 2 verified rounds, got {verified}"
        )
        assert report.total_edits == 60
        assert report.repair_throughput > 0

    # 2. Weight-only churn must show genuine incremental reuse: the
    #    rebuild after a weight-edit round constructs strictly fewer
    #    artifacts than a cold build of the same graph.
    _, graph = standard_suite("small")[0]
    graph = graph.copy()
    stream = EditStream(seed=SEED, mix={EditKind.WEIGHT: 1.0})
    driver = ChurnDriver(
        graph,
        ScaleFreeNameIndependentScheme,
        policy="local-detour",
        params=SchemeParameters(epsilon=0.5),
        stream=stream,
        seed=SEED,
        edits_per_round=5,
        pairs_per_round=10,
        verify_every=2,
    )
    report = driver.run(edits=20)
    assert report.total_reused > 0, "weight-only churn reused nothing"
    cold = BuildContext()
    cold_measure = rebuild_through_context(
        cold,
        graph.copy(),
        [ScaleFreeNameIndependentScheme],
        SchemeParameters(epsilon=0.5),
        label="cold",
    )
    per_round_built = max(sum(r.built.values()) for r in report.rounds)
    assert per_round_built < cold_measure.built_total, (
        f"incremental round built {per_round_built} >= cold "
        f"{cold_measure.built_total}"
    )
    print("bench_churn --check: all invariants hold")


if __name__ == "__main__":
    sys.exit(run(measure, check))
