"""E3 — regenerate Figure 1 (name-independent route anatomy).

Run with: ``pytest benchmarks/bench_fig1.py --benchmark-only -s``
"""

from repro.experiments import fig1


def test_fig1_simple_scheme_anatomy(once):
    result = once(fig1.run, epsilon=0.5, pair_count=150)
    for row in result.rows:
        # Shares are a partition of the route cost.
        assert abs(row[2] + row[3] + row[4] - 1.0) < 0.01
        # Lemma 3.4: the search phase dominates on average.
        assert row[3] >= row[2]


def test_fig1_scalefree_scheme_anatomy(once):
    result = once(fig1.run_scalefree, epsilon=0.5, pair_count=150)
    for row in result.rows:
        assert abs(row[2] + row[3] + row[4] - 1.0) < 0.01
