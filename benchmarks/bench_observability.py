"""Measure the cost of route tracing — and guard that "off" stays free.

Reproduces the numbers recorded in ``BENCH_observability.json``:

* ``route_microseconds`` — mean per-route wall time for the two
  decision-heaviest schemes on the 8x8 grid, with tracing disabled
  (plain ``route()``, the default every experiment uses) and enabled
  (``trace_route()``); the ratio is the price of a recorded trace.
* ``report_generate_pairs300_seconds`` — wall clock of the full
  EXPERIMENTS.md regeneration with tracing disabled, the end-to-end
  guard that instrumenting every scheme did not slow the pipeline
  (the ``before`` value in the JSON was measured at the parent commit
  with the same snippet).

Run with ``PYTHONPATH=src python benchmarks/bench_observability.py``.

``--check`` runs the fast CI guard only: every traced route must replay
to the exact returned path/cost, and untraced routing must not be
slower than traced routing (best-of-5 timings; the no-op tracer is one
attribute read per decision, so "off" being measurably slower than "on"
means the gating broke).
"""

from __future__ import annotations

import sys
import time

from _runner import run

from repro.graphs.generators import grid_2d
from repro.observability.trace import replay
from repro.pipeline.context import BuildContext
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

#: Slack factor for the --check timing guard: untraced must be at most
#: this multiple of traced.  Recording allocates an event per decision,
#: so equality is already suspicious; 1.10 absorbs shared-CI jitter.
CHECK_SLACK = 1.10

BENCH_SCHEMES = (
    ("nameind-simple", SimpleNameIndependentScheme),
    ("nameind-sf", ScaleFreeNameIndependentScheme),
)


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_scheme(scheme, pairs, repeats: int = 5):
    """Best-of wall time over ``pairs`` for untraced vs traced routing."""

    def untraced():
        for u, v in pairs:
            scheme.route(u, v)

    def traced():
        for u, v in pairs:
            result, trace = scheme.trace_route(u, v)
            assert replay(trace).matches(result.path, result.cost)

    return _best_of(untraced, repeats), _best_of(traced, repeats)


def run_check() -> int:
    context = BuildContext()
    metric = context.metric(grid_2d(8))
    pairs = context.pairs(metric, 150, seed=3)
    failures = 0
    for slug, scheme_cls in BENCH_SCHEMES:
        scheme = context.scheme(scheme_cls, metric)
        untraced, traced = measure_scheme(scheme, pairs)
        verdict = "ok" if untraced <= traced * CHECK_SLACK else "FAIL"
        print(
            f"{slug}: untraced {untraced * 1e3:.1f}ms, "
            f"traced {traced * 1e3:.1f}ms "
            f"(x{traced / untraced:.2f}) ... {verdict}"
        )
        if verdict == "FAIL":
            failures += 1
    if failures:
        print(
            "disabled tracing is slower than enabled tracing — the "
            "`if tracer.enabled` gating has regressed",
            file=sys.stderr,
        )
    return 1 if failures else 0


def check() -> None:
    if run_check():
        raise SystemExit(1)


def measure() -> dict:
    context = BuildContext()
    metric = context.metric(grid_2d(8))
    pairs = context.pairs(metric, 300, seed=3)
    results = {"route_microseconds": {}}
    for slug, scheme_cls in BENCH_SCHEMES:
        scheme = context.scheme(scheme_cls, metric)
        untraced, traced = measure_scheme(scheme, pairs)
        results["route_microseconds"][slug] = {
            "untraced": round(untraced / len(pairs) * 1e6, 1),
            "traced": round(traced / len(pairs) * 1e6, 1),
            "ratio": round(traced / untraced, 2),
        }

    from repro.experiments import report

    start = time.perf_counter()
    report.generate(pair_count=300)
    results["report_generate_pairs300_seconds"] = round(
        time.perf_counter() - start, 2
    )
    return results


if __name__ == "__main__":
    sys.exit(run(measure, check))
