"""E1 — regenerate Table 1 (name-independent schemes), measured.

Run with: ``pytest benchmarks/bench_table1.py --benchmark-only -s``
"""

from repro.experiments import table1


def test_table1_name_independent_schemes(once):
    result = once(table1.run, epsilon=0.5, pair_count=300)
    # Sanity: compact rows stay within the 9 + O(eps) envelope.
    for row in result.rows:
        if row[1] != "baseline (stretch 1)":
            assert row[2] <= 9 + 8 * 0.5


def test_table1_small_epsilon(once):
    result = once(table1.run, epsilon=0.25, pair_count=150)
    for row in result.rows:
        if row[1] != "baseline (stretch 1)":
            inv = 1 / 0.25
            assert row[2] <= (1 + 8 * (inv + 1) / (inv - 2)) * 1.3
