"""E10 — exact evaluation of the Claims 5.9-5.11 arithmetic over a grid
of epsilon values, plus preprocessing-time benchmarks of the
counterexample construction.

Run with: ``pytest benchmarks/bench_lowerbound.py --benchmark-only -s``
"""

import pytest

from repro.lowerbound.counting import (
    averaging_bound,
    congruent_naming_log_count,
    lower_bound_parameters,
    verify_claim_5_10_base,
    verify_claim_5_11,
)
from repro.lowerbound.tree import lower_bound_tree


def test_claims_over_epsilon_grid(once):
    def audit():
        checked = 0
        for k in range(1, 78):
            eps = k / 10.0
            params = lower_bound_parameters(eps)
            assert params.stretch == pytest.approx(9.0 - eps)
            assert verify_claim_5_10_base(eps)
            assert verify_claim_5_11(eps)
            m = params.p // 2
            assert averaging_bound(m) > 4.0 - eps / 4.0
            checked += 1
        return checked

    assert once(audit) == 77


def test_congruent_naming_counts(once):
    def audit():
        n = 1 << 16
        worst_gap = float("inf")
        for c in (8, 64, 192):
            beta = 0.5 * n ** (1.0 / c)  # below the o(n^{1/c}) threshold
            for i in range(c + 1):
                log_count = congruent_naming_log_count(n, beta, i, c)
                worst_gap = min(worst_gap, log_count)
        return worst_gap

    # Even the most-constrained congruent family stays astronomically
    # large (Lemma 5.4's pigeonhole): log2 |L_c| >> 0.
    assert once(audit) > 0


def test_tree_construction_benchmark(once):
    tree = once(lower_bound_tree, 6.0, 1024)
    assert tree.n == 1024
