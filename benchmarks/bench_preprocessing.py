"""Preprocessing wall-clock benchmarks: scheme construction times.

Unlike the experiment benches (one pedantic round around a whole
table), these time the *builds* with real repetition statistics — the
numbers to watch for performance regressions in the substrates
(all-pairs Dijkstra, net hierarchy, ball packings, search trees).

Run with: ``pytest benchmarks/bench_preprocessing.py --benchmark-only``
"""

import pytest

from repro.core.params import SchemeParameters
from repro.graphs.generators import grid_2d
from repro.metric.graph_metric import GraphMetric
from repro.nets.hierarchy import NetHierarchy
from repro.packing.ballpacking import BallPacking
from repro.schemes.labeled_scalefree import ScaleFreeLabeledScheme
from repro.schemes.nameind_scalefree import ScaleFreeNameIndependentScheme
from repro.schemes.nameind_simple import SimpleNameIndependentScheme

PARAMS = SchemeParameters(epsilon=0.5)


@pytest.fixture(scope="module")
def grid12_graph():
    return grid_2d(12)


@pytest.fixture(scope="module")
def grid12_metric(grid12_graph):
    return GraphMetric(grid12_graph)


def test_build_metric(benchmark, grid12_graph):
    metric = benchmark(GraphMetric, grid12_graph)
    assert metric.n == 144


def test_build_hierarchy(benchmark, grid12_metric):
    hierarchy = benchmark(NetHierarchy, grid12_metric)
    assert hierarchy.net(0) == list(grid12_metric.nodes)


def test_build_packing(benchmark, grid12_metric):
    packing = benchmark(BallPacking, grid12_metric)
    assert packing.top_level == grid12_metric.log_n


def test_build_labeled_scalefree(benchmark, grid12_metric):
    scheme = benchmark.pedantic(
        ScaleFreeLabeledScheme,
        args=(grid12_metric, PARAMS),
        rounds=3,
        iterations=1,
    )
    assert scheme.max_table_bits() > 0


def test_build_nameind_simple(benchmark, grid12_metric):
    scheme = benchmark.pedantic(
        SimpleNameIndependentScheme,
        args=(grid12_metric, PARAMS),
        rounds=3,
        iterations=1,
    )
    assert scheme.max_table_bits() > 0


def test_build_nameind_scalefree(benchmark, grid12_metric):
    scheme = benchmark.pedantic(
        ScaleFreeNameIndependentScheme,
        args=(grid12_metric, PARAMS),
        rounds=3,
        iterations=1,
    )
    assert scheme.max_table_bits() > 0


def test_route_throughput_nameind(benchmark, grid12_metric):
    scheme = ScaleFreeNameIndependentScheme(grid12_metric, PARAMS)
    pairs = [(u, (u * 37 + 11) % grid12_metric.n) for u in range(100)]
    pairs = [(u, v) for u, v in pairs if u != v]

    def route_all():
        return sum(scheme.route(u, v).stretch for u, v in pairs)

    total = benchmark(route_all)
    assert total >= len(pairs)
