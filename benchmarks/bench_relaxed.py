"""E12 — relaxed-guarantee territory (the paper's open problem).

Run with: ``pytest benchmarks/bench_relaxed.py --benchmark-only -s``
"""

from repro.experiments import relaxed


def test_stretch_tail_is_thin(once):
    result = once(relaxed.run, epsilon=0.5, pair_count=300)
    for row in result.rows:
        # Median stretch is far below the worst case...
        assert row[2] <= row[4]
        # ...and the worst case binds only a thin tail of pairs.
        assert row[5] <= 0.35
        # Storage is not concentrated on a few nodes beyond ~3x median.
        assert row[7] <= 4 * row[6]
