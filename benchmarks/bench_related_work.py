"""Related-work comparison (paper §1.2): Cowen stretch-3 vs Theorem 1.2.

Run with: ``pytest benchmarks/bench_related_work.py --benchmark-only -s``
"""

from repro.experiments import related_work


def test_related_work_comparison(once):
    result = once(related_work.run, epsilon=0.5, pair_count=250)
    for row in result.rows:
        if row[1] == "Cowen stretch-3":
            assert row[2] <= 3.0 + 1e-9
        else:
            assert row[2] <= 1 + 8 * 0.5
