"""Shared CLI runner for the ``bench_*`` scripts.

Every benchmark follows the same convention: run bare to *measure*
(print a JSON payload, optionally committing it to a ``BENCH_*.json``
file), or run with ``--check`` for the fast deterministic CI variant
(invariants only, no wall-clock numbers committed).  This module is
that convention, written once:

    from _runner import run

    def measure() -> dict: ...
    def check() -> None: ...   # asserts; prints its own summary line

    if __name__ == "__main__":
        sys.exit(run(measure, check, output="BENCH_foo.json"))

``output=None`` prints the payload without writing a file.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Optional, Sequence


def run(
    measure: Callable[[], dict],
    check: Callable[[], None],
    output: Optional[str] = None,
    argv: Optional[Sequence[str]] = None,
) -> int:
    """Dispatch the shared bench CLI; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if "--check" in argv:
        check()
        return 0
    payload = measure()
    text = json.dumps(payload, indent=2)
    if output is not None:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    print(text)
    if output is not None:
        print(f"wrote {output}", file=sys.stderr)
    return 0
