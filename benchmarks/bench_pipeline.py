"""Benchmark the shared-substrate pipeline against isolated rebuilds.

Reproduces the numbers recorded in ``BENCH_pipeline.json``:

* ``report_seconds`` — wall clock of ``repro.experiments.report.generate``
  (the full EXPERIMENTS.md regeneration, one shared :class:`BuildContext`);
* ``medium_tables_isolated_seconds`` — Table 1 + Table 2 on the medium
  suite with a *fresh* context per experiment (the seed's behaviour:
  every experiment rebuilt APSP, hierarchies, packings, and schemes);
* ``medium_tables_shared_seconds`` — the same two experiments sharing
  one context, as ``python -m repro report`` now runs them.

Run with ``PYTHONPATH=src python benchmarks/bench_pipeline.py``.
"""

from __future__ import annotations

import json
import time

from repro.experiments import report, table1, table2
from repro.experiments.harness import standard_suite
from repro.pipeline.context import BuildContext


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return round(time.perf_counter() - start, 2)


def main() -> None:
    suite = standard_suite("medium")
    results = {
        "medium_tables_isolated_seconds": _timed(
            lambda: (
                table1.run(suite=suite, context=BuildContext()),
                table2.run(suite=suite, context=BuildContext()),
            )
        ),
    }
    shared = BuildContext()
    results["medium_tables_shared_seconds"] = _timed(
        lambda: (
            table1.run(suite=suite, context=shared),
            table2.run(suite=suite, context=shared),
        )
    )
    results["shared_context_stats"] = repr(shared)
    results["report_seconds"] = _timed(lambda: report.generate(pair_count=300))
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
