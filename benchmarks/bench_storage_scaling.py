"""E8 — storage scaling vs n (against log^3 n) for all schemes.

Run with: ``pytest benchmarks/bench_storage_scaling.py --benchmark-only -s``
"""

import math

from repro.experiments import sweeps


def test_storage_scaling(once):
    result = once(sweeps.run_storage_scaling, sizes=[32, 64, 128, 256])
    rows = result.rows
    # Storage grows with n but stays polylogarithmic: the growth factor
    # from n=32 to n=256 must be far below the 8x of linear scaling.
    for column in (3, 4, 5):  # the compact schemes
        factor = rows[-1][column] / max(1, rows[0][column])
        assert factor < 6.0
    # Labels are exactly ceil(log2 n) bits.
    for row in rows:
        assert row[-1] == math.ceil(math.log2(row[0]))
