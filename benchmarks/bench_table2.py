"""E2 — regenerate Table 2 (labeled schemes), measured.

Run with: ``pytest benchmarks/bench_table2.py --benchmark-only -s``
"""

from repro.experiments import table2


def test_table2_labeled_schemes(once):
    result = once(table2.run, epsilon=0.5, pair_count=300)
    for row in result.rows:
        # Every labeled scheme stays within 1 + O(eps).
        assert row[2] <= 1 + 8 * 0.5
        # Labels are exactly ceil(log n) bits.
        assert row[7] >= 1


def test_table2_small_epsilon(once):
    result = once(table2.run, epsilon=0.25, pair_count=150)
    for row in result.rows:
        assert row[2] <= 1 + 8 * 0.25
