"""E4 — regenerate Figure 2 (labeled route anatomy).

Run with: ``pytest benchmarks/bench_fig2.py --benchmark-only -s``
"""

from repro.experiments import fig2


def test_fig2_labeled_anatomy(once):
    result = once(fig2.run, epsilon=0.5, pair_count=150)
    for row in result.rows:
        assert abs(row[1] + row[2] + row[3] + row[4] - 1.0) < 0.01
        # Lemma 4.5 must hold: no defensive escalations.
        assert row[8] == 0
        # Lemma 4.7: stretch within 1 + O(eps).
        assert row[6] <= 1 + 8 * 0.5
