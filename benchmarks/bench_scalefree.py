"""E6 — the scale-free ablation: storage vs log Delta at fixed n.

Run with: ``pytest benchmarks/bench_scalefree.py --benchmark-only -s``
"""

from repro.experiments import scalefree


def test_scalefree_storage_flat_vs_log_delta(once):
    result = once(scalefree.run, n=20, bases=[1.5, 2.0, 4.0, 8.0])
    first, last = result.rows[0], result.rows[-1]
    # log Delta grows several-fold across the sweep...
    assert last[1] >= 2 * first[1]
    # ...the non-scale-free schemes pay for it...
    assert last[2] > 1.5 * first[2]   # labeled non-SF
    assert last[4] > 1.5 * first[4]   # name-ind non-SF (Thm 1.4)
    # ...the scale-free schemes do not (Theorems 1.1, 1.2).
    assert last[3] <= 2.0 * first[3]
    assert last[5] <= 2.0 * first[5]
