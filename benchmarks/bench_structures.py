"""E9 — substrate lemma audit (Lemmas 2.2, 2.3, Eqn. 3, Claim 3.9).

Run with: ``pytest benchmarks/bench_structures.py --benchmark-only -s``
"""

from repro.experiments import structures


def test_substrate_audit(once):
    result = once(structures.run, epsilon=0.5)
    for row in result.rows:
        assert row[2] is True           # Lemma 2.3 exactly
        assert row[3] <= row[4] + 1e-9  # Eqn. 3 height bound
        assert row[5] <= row[6]         # Claim 3.9 H-link budget
