"""Benchmark the two-tier metric substrate (the O(n²) ceiling break).

Reproduces the numbers recorded in ``BENCH_substrate.json``: the
n = 256 → 10⁴ build trajectory of the lazy substrate under the landmark
name-independent scheme on a preferential-attachment graph — build
seconds (graph / metric / scheme split), full Dijkstra rows
materialized, ``tracemalloc`` peak and process RSS high water, average
stretch on a fixed pair sample — plus a dense-vs-lazy head-to-head at
n = 256 where both strategies are buildable.

Run with ``PYTHONPATH=src python benchmarks/bench_substrate.py``
(writes ``BENCH_substrate.json``; ~1-2 minutes, dominated by the
n = 10⁴ point).  Pass ``--check`` for the CI variant: deterministic
invariants only, no wall-clock assertions —

* lazy answers (distances, balls, next hops) bit-identical to dense on
  a sampled grid of queries at n = 256;
* the landmark scheme builds and routes at n = 2048 with
  ``rows_materialized`` a small fraction of n (the acceptance counter
  behind "never materialize the dense matrix");
* a 4 MiB row budget is respected (evictions occur, stored bytes stay
  under budget) with answers unchanged.
"""

from __future__ import annotations

import resource
import sys
import time
import tracemalloc

import numpy as np

from _runner import run
from repro.graphs.generators import preferential_attachment, random_geometric
from repro.metric.graph_metric import GraphMetric
from repro.pipeline.sampling import sample_ordered_pairs
from repro.schemes.landmark_nameind import LandmarkNameIndependentScheme

SIZES = (256, 2048, 10_000)
PAIRS = 100


def _rss_bytes() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return rss * 1024 if sys.platform != "darwin" else rss


def measure_point(n: int, strategy: str = "lazy") -> dict:
    """One trajectory point: build + route at size ``n``."""
    tracemalloc.start()
    t0 = time.perf_counter()
    graph = preferential_attachment(n, m=2, seed=1)
    t1 = time.perf_counter()
    metric = GraphMetric(graph, strategy=strategy)
    t2 = time.perf_counter()
    scheme = LandmarkNameIndependentScheme(metric)
    t3 = time.perf_counter()
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    build_stats = dict(metric.substrate_stats())
    stretches = [
        scheme.route(u, v).stretch
        for u, v in sample_ordered_pairs(n, PAIRS, seed=0)
    ]
    return {
        "n": n,
        "strategy": metric.strategy,
        "graph_seconds": round(t1 - t0, 3),
        "metric_seconds": round(t2 - t1, 3),
        "scheme_seconds": round(t3 - t2, 3),
        "build_seconds": round(t3 - t0, 3),
        "rows_materialized": int(build_stats["rows_materialized"]),
        "rows_after_routing": int(
            metric.substrate_stats()["rows_materialized"]
        ),
        "bounded_searches": int(build_stats["bounded_searches"]),
        "stored_bytes": int(build_stats["stored_bytes"]),
        "traced_peak_bytes": int(traced_peak),
        "rss_high_water_bytes": _rss_bytes(),
        "avg_stretch": round(float(np.mean(stretches)), 4),
        "max_stretch": round(float(np.max(stretches)), 4),
        "avg_table_bits": int(scheme.total_table_bits() / n),
        "dense_matrix_bytes_hypothetical": int(n * n * (8 + 4)),
    }


def landmark_sweep_row() -> dict:
    """One committed row of the E19c landmark/vicinity sizing sweep.

    The ``vicinity = 4·√n`` point at ``landmarks = √n`` — the cell that
    shows stretch falling toward the Krioukov–Fall–Yang near-1 regime
    once vicinities pass the hub scale (run ``python -m repro scale``
    for the full sweep).
    """
    from repro.experiments.scale import run_landmark_sweep

    table = run_landmark_sweep(
        pair_count=200, vicinity_scale=(4.0,), landmarks=(16,)
    )
    row = {
        column: value
        for column, value in zip(table.columns, table.rows[0])
    }
    return {
        "experiment": "E19c",
        "graph": "preferential_attachment(256, m=2, seed=1)",
        **row,
    }


def measure() -> dict:
    points = [measure_point(n) for n in SIZES]
    # Head-to-head at the smallest size, where dense is cheap.
    head_to_head = {
        strategy: measure_point(SIZES[0], strategy=strategy)
        for strategy in ("dense", "lazy")
    }
    return {
        "graph_family": "preferential_attachment(m=2, seed=1)",
        "scheme": "LandmarkNameIndependentScheme",
        "pair_sample": PAIRS,
        "landmark_sweep": landmark_sweep_row(),
        "trajectory": points,
        "head_to_head_n256": head_to_head,
        "note": (
            "rows_materialized counts full Dijkstra rows ever solved; "
            "dense_matrix_bytes_hypothetical is what the eager APSP "
            "(float64 dist + int32 pred) would allocate at that n"
        ),
    }


def check() -> None:
    """CI invariants (deterministic, no wall-clock assertions)."""
    # 1. Strategy equivalence on a non-doubling graph: same distances,
    #    balls, and next hops from both substrates.
    graph = preferential_attachment(256, m=2, seed=1)
    dense = GraphMetric(graph, strategy="dense")
    lazy = GraphMetric(graph, strategy="lazy")
    rng = np.random.default_rng(7)
    for u, v in rng.integers(0, dense.n, size=(200, 2)):
        u, v = int(u), int(v)
        assert dense.distance(u, v) == lazy.distance(u, v)
        assert dense.next_hop(u, v) == lazy.next_hop(u, v)
    for u in map(int, rng.integers(0, dense.n, size=20)):
        r = float(rng.uniform(0, dense.diameter))
        assert dense.ball(u, r) == lazy.ball(u, r)
        for j in range(0, dense.log_n + 1):
            assert dense.r_u(u, j) == lazy.r_u(u, j)

    # 2. The acceptance criterion at a CI-sized n: the landmark scheme
    #    builds and routes without approaching full materialization.
    n = 2048
    metric = GraphMetric(
        preferential_attachment(n, m=2, seed=1), strategy="lazy"
    )
    scheme = LandmarkNameIndependentScheme(metric)
    for u, v in sample_ordered_pairs(n, 50, seed=0):
        result = scheme.route(u, v)
        assert result.path[-1] == v
        assert result.cost >= result.optimal - 1e-9
    rows = int(metric.substrate_stats()["rows_materialized"])
    assert rows < n // 4, (
        f"lazy build materialized {rows} rows at n={n} (expected << n)"
    )

    # 3. Budgeted store: evictions happen, budget is respected, answers
    #    survive eviction bit-identically.
    graph = random_geometric(128, seed=11)
    reference = GraphMetric(graph, strategy="lazy")
    budgeted = GraphMetric(
        graph, strategy="lazy", row_budget_bytes=4 * 2**20 // 256
    )
    for u in range(budgeted.n):
        assert (
            reference.distances_from(u) == budgeted.distances_from(u)
        ).all()
    stats = budgeted.substrate_stats()
    assert stats["evictions"] > 0, "budget never evicted"
    assert stats["stored_bytes"] <= stats["budget_bytes"]
    print("bench_substrate --check: all invariants hold")


if __name__ == "__main__":
    sys.exit(run(measure, check, output="BENCH_substrate.json"))
